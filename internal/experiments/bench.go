package experiments

import (
	"encoding/json"
	"io"

	"repro/internal/core"
)

// RunRecord is the per-testcase outcome of one Table-I solve, in the
// machine-readable form consumed by benchmark tooling (BENCH_table1.json).
type RunRecord struct {
	Run          int     `json:"run"`
	Arm          string  `json:"arm"` // "without" or "with" design alternatives
	Found        bool    `json:"found"`
	Seconds      float64 `json:"seconds"`
	Nodes        int64   `json:"nodes"`
	Backtracks   int64   `json:"backtracks"`
	Propagations int64   `json:"propagations"`
	Utilization  float64 `json:"utilization"`
	Height       int     `json:"height"`
	Optimal      bool    `json:"optimal"`
	Reason       string  `json:"reason"`
}

// record flattens one measured placement into a RunRecord.
func record(run int, arm string, res *core.Result) RunRecord {
	return RunRecord{
		Run:          run,
		Arm:          arm,
		Found:        res.Found,
		Seconds:      res.Elapsed.Seconds(),
		Nodes:        res.Nodes,
		Backtracks:   res.Backtracks,
		Propagations: res.Propagations,
		Utilization:  res.Utilization,
		Height:       res.Height,
		Optimal:      res.Optimal,
		Reason:       res.Reason.String(),
	}
}

// benchFile is the BENCH_table1.json wire format.
type benchFile struct {
	Experiment string      `json:"experiment"`
	Runs       int         `json:"runs"`
	Records    []RunRecord `json:"records"`
}

// WriteBenchJSON writes the per-testcase records of a Table-I run as
// indented JSON.
func WriteBenchJSON(w io.Writer, res *TableIResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(benchFile{
		Experiment: "table1",
		Runs:       res.Runs,
		Records:    res.Records,
	})
}
