package csp

import (
	"errors"
	"testing"
)

func TestNotEqual(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 3)
	y := st.NewVarRange("y", 0, 3)
	NotEqual(st, x, y)
	if err := st.Assign(x, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if y.Domain().Contains(2) {
		t.Fatal("2 not pruned from y")
	}
}

func TestNotEqualOffset(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 5)
	y := st.NewVarRange("y", 0, 5)
	NotEqualOffset(st, x, y, 2) // x != y + 2
	if err := st.Assign(y, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if x.Domain().Contains(3) {
		t.Fatal("3 not pruned from x")
	}
}

func TestLessEq(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	y := st.NewVarRange("y", 0, 9)
	LessEqOffset(st, x, y, 3) // x + 3 <= y
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if x.Max() != 6 || y.Min() != 3 {
		t.Fatalf("bounds x.max=%d y.min=%d, want 6/3", x.Max(), y.Min())
	}
}

func TestEqualOffset(t *testing.T) {
	st := NewStore()
	x := st.NewVar("x", NewDomainValues(1, 4, 7))
	y := st.NewVar("y", NewDomainValues(0, 3, 9))
	EqualOffset(st, x, y, 1) // x = y + 1
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	// Supported pairs: x=1/y=0, x=4/y=3.
	if x.Size() != 2 || y.Size() != 2 || x.Domain().Contains(7) || y.Domain().Contains(9) {
		t.Fatalf("x=%v y=%v", x, y)
	}
}

func TestAllDifferentPigeonhole(t *testing.T) {
	st := NewStore()
	vars := []*Var{
		st.NewVarRange("a", 0, 1),
		st.NewVarRange("b", 0, 1),
		st.NewVarRange("c", 0, 1),
	}
	AllDifferent(st, vars...)
	res, err := Solve(st, vars, Options{}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 0 || !res.Complete {
		t.Fatalf("pigeonhole: %d solutions, complete=%v", res.Solutions, res.Complete)
	}
}

func TestAllDifferentEnumeration(t *testing.T) {
	st := NewStore()
	vars := []*Var{
		st.NewVarRange("a", 0, 2),
		st.NewVarRange("b", 0, 2),
		st.NewVarRange("c", 0, 2),
	}
	AllDifferent(st, vars...)
	res, err := Solve(st, vars, Options{}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 6 {
		t.Fatalf("permutations = %d, want 6", res.Solutions)
	}
}

func TestSumBounds(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 10)
	y := st.NewVarRange("y", 0, 10)
	total := st.NewVarRange("t", 15, 15)
	Sum(st, total, x, y)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if x.Min() != 5 || y.Min() != 5 {
		t.Fatalf("x.min=%d y.min=%d, want 5/5", x.Min(), y.Min())
	}
	if err := st.Assign(x, 7); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if !y.Assigned() || y.Value() != 8 {
		t.Fatalf("y = %v, want 8", y)
	}
}

func TestSumInfeasible(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 2)
	y := st.NewVarRange("y", 0, 2)
	total := st.NewVarRange("t", 10, 10)
	Sum(st, total, x, y)
	if err := st.Propagate(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxOf(t *testing.T) {
	st := NewStore()
	a := st.NewVarRange("a", 2, 7)
	b := st.NewVarRange("b", 0, 4)
	m := st.NewVarRange("m", 0, 100)
	MaxOf(st, m, a, b)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if m.Min() != 2 || m.Max() != 7 {
		t.Fatalf("m = %v, want [2,7]", m)
	}
	if err := st.SetMax(m, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if a.Max() != 3 || b.Max() != 3 {
		t.Fatalf("vars not pruned by m: a=%v b=%v", a, b)
	}
	// Only a can reach m.min (=2 after SetMax? m.min is 2; both reach).
	// Tighten: force b below 2 so only a supports m >= 2... then a.min
	// must rise to m.min.
	if err := st.SetMax(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if a.Min() != 2 {
		t.Fatalf("a.min = %d, want 2 (single support)", a.Min())
	}
}

func TestMaxOfPanicsOnEmpty(t *testing.T) {
	st := NewStore()
	m := st.NewVarRange("m", 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MaxOf(st, m)
}

func TestElement(t *testing.T) {
	st := NewStore()
	idx := st.NewVarRange("i", -2, 10)
	res := st.NewVarRange("r", 0, 100)
	table := []int{5, 9, 5, 12}
	Element(st, idx, table, res)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if idx.Min() != 0 || idx.Max() != 3 {
		t.Fatalf("index not clamped: %v", idx)
	}
	if res.Domain().Contains(7) || !res.Domain().Contains(12) {
		t.Fatalf("result not filtered: %v", res)
	}
	if err := st.Remove(res, 5); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if idx.Domain().Contains(0) || idx.Domain().Contains(2) {
		t.Fatalf("index values without support survived: %v", idx)
	}
}

func TestElementPanicsOnEmptyTable(t *testing.T) {
	st := NewStore()
	idx := st.NewVarRange("i", 0, 1)
	res := st.NewVarRange("r", 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Element(st, idx, nil, res)
}

func TestBinaryTable(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 3)
	y := st.NewVarRange("y", 0, 3)
	BinaryTable(st, x, y, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 0}})
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if x.Domain().Contains(3) {
		t.Fatal("x=3 has no support")
	}
	if err := st.Assign(x, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if y.Domain().Contains(0) || y.Domain().Contains(1) || y.Size() != 2 {
		t.Fatalf("y = %v, want {2,3}", y)
	}
}

func TestBinaryTablePanicsOnEmpty(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 1)
	y := st.NewVarRange("y", 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BinaryTable(st, x, y, nil)
}

func TestFuncProp(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	st.Post(FuncProp(func(s *Store) error { return s.SetMin(x, 4) }), x)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if x.Min() != 4 {
		t.Fatal("FuncProp did not run")
	}
}
