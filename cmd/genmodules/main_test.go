package main

import (
	"strings"
	"testing"

	"repro/internal/recobus"
	"repro/internal/workload"
)

func TestRunProducesParsableSpec(t *testing.T) {
	var sb strings.Builder
	cfg := workload.Config{NumModules: 4, CLBMin: 6, CLBMax: 12, BRAMMax: 1, Alternatives: 2}
	if err := run(&sb, cfg, 7); err != nil {
		t.Fatal(err)
	}
	mods, err := recobus.ParseModules(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("generated spec unparsable: %v", err)
	}
	if len(mods) != 4 {
		t.Fatalf("modules = %d", len(mods))
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var sb strings.Builder
	cfg := workload.Config{NumModules: -3, CLBMax: 5, Alternatives: 1}
	if err := run(&sb, cfg, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := workload.Config{NumModules: 3, CLBMin: 5, CLBMax: 9, NoBRAM: true, Alternatives: 2}
	var a, b strings.Builder
	if err := run(&a, cfg, 5); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, cfg, 5); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed differs")
	}
}
