package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/online"
	"repro/internal/service"
	"repro/internal/workload"
)

// Session mode drives the daemon's stateful online API instead of the
// stateless /v1/place batch endpoint. Each worker owns one session and
// replays a seeded arrive/depart/defrag mix against it while keeping a
// client-side shadow of the fabric: its own occupancy bitmap plus the
// modules it believes are resident. Every server answer is replayed
// onto the shadow through online.ValidatePlacement — the same validity
// oracle the server audits itself with — so any disagreement (an
// overlapping placement, a move onto occupied tiles, a release the
// server forgot) is an invariant violation, caught from the outside
// with no access to server state.
//
// The mix is deterministic per (seed, worker): worker w seeds its PRNG
// with seed+w and cycles through the session managers, so a run
// exercises every greedy policy.

// shadowResident is the client's record of one module it placed.
type shadowResident struct {
	mod *module.Module
	pts []grid.Point
}

// sessionWorker drives one session and its shadow state.
type sessionWorker struct {
	c      *client.Client
	o      cliOpts
	agg    *counters
	worker int
	rng    *rand.Rand
	region *fabric.Region
	id     string
	occ    *grid.Bitmap
	res    map[int64]shadowResident
	nextID int64
}

// runSessions is the session-mode driver behind -mode sessions.
func runSessions(o cliOpts, out io.Writer) (*summary, error) {
	if o.concurrency <= 0 {
		o.concurrency = 1
	}
	dev, err := fabric.ByName(o.fabric)
	if err != nil {
		return nil, err
	}
	agg := &counters{out: out, vrb: o.verbose}
	agg.sum.Statuses = map[string]int64{}

	opsPerWorker := o.requests / o.concurrency
	if opsPerWorker < 1 {
		opsPerWorker = 1
	}
	deadline := time.Time{}
	if o.duration > 0 {
		deadline = time.Now().Add(o.duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < o.concurrency; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := &sessionWorker{
				c: client.New(o.addr, client.Options{
					Seed:       o.seed + int64(wi),
					HTTPClient: &http.Client{Timeout: o.timeout},
				}),
				o:      o,
				agg:    agg,
				worker: wi,
				rng:    rand.New(rand.NewSource(o.seed + int64(wi))),
				region: dev.FullRegion(),
				occ:    grid.NewBitmap(dev.Bounds().W(), dev.Bounds().H()),
				res:    map[int64]shadowResident{},
			}
			w.drive(opsPerWorker, deadline)
		}(wi)
	}
	wg.Wait()

	agg.sum.ElapsedMs = float64(time.Since(start).Microseconds()) / 1e3
	line, err := json.MarshalIndent(&agg.sum, "", "  ")
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out, string(line))
	return &agg.sum, nil
}

// count records one op's terminal status and retry tally.
func (w *sessionWorker) count(res *client.Result, err error) {
	w.agg.mu.Lock()
	w.agg.sum.Requests++
	if res != nil {
		w.agg.sum.Retries += int64(res.Retries)
		w.agg.sum.Statuses[fmt.Sprintf("%d", res.Status)]++
	}
	if err != nil {
		w.agg.sum.Transport++
	}
	w.agg.mu.Unlock()
}

// faultStatus reports a status the fault injector is documented to
// produce on the session path; the shadow stays unchanged because the
// fault fires at handler entry, before any session mutation.
func faultStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

func (w *sessionWorker) drive(ops int, deadline time.Time) {
	if !w.create() {
		return
	}
	for i := 0; i < ops; i++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		r := w.rng.Float64()
		switch {
		case r < 0.55 || len(w.res) == 0:
			w.arrive()
		case r < 0.90:
			w.depart()
		default:
			w.defrag()
		}
	}
	w.verifyStats()
	res, err := w.c.Delete(context.Background(), "/v1/sessions/"+w.id)
	w.count(res, err)
}

// create opens the worker's session; the manager cycles through the
// catalog so a concurrent run covers every greedy policy.
func (w *sessionWorker) create() bool {
	managers := online.SessionManagers()
	body, err := json.Marshal(service.SessionCreateRequest{
		Fabric:  w.o.fabric,
		Manager: managers[w.worker%len(managers)],
		Replan:  service.OptionsSpec{StallNodes: 200, TimeoutMs: 5000},
	})
	if err != nil {
		w.agg.violation(int64(w.worker), "marshal create: %v", err)
		return false
	}
	res, err := w.c.Do(context.Background(), "/v1/sessions", body)
	w.count(res, err)
	if err != nil {
		return false
	}
	if res.Status != http.StatusOK {
		if !faultStatus(res.Status) {
			w.agg.violation(int64(w.worker), "create session: status %d: %s", res.Status, res.Body)
		}
		return false
	}
	var info service.SessionInfo
	if err := json.Unmarshal(res.Body, &info); err != nil || info.Session == "" {
		w.agg.violation(int64(w.worker), "create session body: %v: %s", err, res.Body)
		return false
	}
	w.id = info.Session
	return true
}

// arrive generates one module, asks the session to place it, and
// commits the server's answer to the shadow — after revalidating every
// relocation and the newcomer's tiles against the shadow occupancy.
func (w *sessionWorker) arrive() {
	mods, err := workload.Generate(workload.Config{
		NumModules: 1, CLBMin: 4, CLBMax: 6, NoBRAM: true, Alternatives: 2,
	}, w.rng)
	if err != nil {
		w.agg.violation(int64(w.worker), "workload: %v", err)
		return
	}
	mod := mods[0]
	task := w.nextID
	w.nextID++
	spec := service.ModuleSpecFor(mod)
	body, err := json.Marshal(service.SessionPlaceRequest{Task: task, Module: &spec})
	if err != nil {
		w.agg.violation(task, "marshal place: %v", err)
		return
	}
	res, err := w.c.Do(context.Background(), "/v1/sessions/"+w.id+"/place", body)
	w.count(res, err)
	if err != nil {
		return
	}
	if res.Status != http.StatusOK {
		if !faultStatus(res.Status) {
			w.agg.violation(task, "place: status %d: %s", res.Status, res.Body)
		}
		return
	}
	quality := res.Header.Get("X-Placement-Quality")
	if quality != service.QualityExact && quality != service.QualityApproximate {
		w.agg.violation(task, "place quality %q", quality)
		return
	}
	var resp service.SessionPlaceResponse
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		w.agg.violation(task, "place body: %v", err)
		return
	}
	if !resp.Placed {
		w.agg.mu.Lock()
		w.agg.sum.Infeasible++
		w.agg.mu.Unlock()
		return
	}
	if !w.applyMoves(task, resp.Moves) {
		return
	}
	pts, err := online.ValidatePlacement(w.region, w.occ, mod,
		online.Placement{Shape: resp.Shape, At: grid.Pt(resp.X, resp.Y)})
	if err != nil {
		w.agg.violation(task, "placement fails shadow validation (%s): %v", quality, err)
		return
	}
	w.occ.SetPoints(pts, true)
	w.res[task] = shadowResident{mod: mod, pts: pts}
	w.agg.mu.Lock()
	if quality == service.QualityApproximate {
		w.agg.sum.Approximate++
	} else {
		w.agg.sum.Exact++
	}
	w.agg.mu.Unlock()
}

// applyMoves replays a relocation schedule onto the shadow in the
// server's order: each move must be priced and must land on tiles that
// are free once its own module vacates — exactly the invariant the
// ordered schedule promises.
func (w *sessionWorker) applyMoves(seq int64, moves []service.MoveSpec) bool {
	for _, mv := range moves {
		r, ok := w.res[mv.Task]
		if !ok {
			w.agg.violation(seq, "move names unknown resident %d", mv.Task)
			return false
		}
		if mv.Frames <= 0 || mv.ReconfigMs <= 0 {
			w.agg.violation(seq, "unpriced move %+v", mv)
			return false
		}
		w.occ.SetPoints(r.pts, false)
		pts, err := online.ValidatePlacement(w.region, w.occ, r.mod,
			online.Placement{Shape: mv.Shape, At: grid.Pt(mv.X, mv.Y)})
		if err != nil {
			w.agg.violation(seq, "move of %d fails shadow validation: %v", mv.Task, err)
			return false
		}
		w.occ.SetPoints(pts, true)
		r.pts = pts
		w.res[mv.Task] = r
	}
	return true
}

// depart releases one random shadow resident; the server must agree it
// was resident.
func (w *sessionWorker) depart() {
	ids := make([]int64, 0, len(w.res))
	for id := range w.res {
		ids = append(ids, id)
	}
	// Map order is random; sort so the seeded pick is deterministic.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	task := ids[w.rng.Intn(len(ids))]
	res, err := w.c.Delete(context.Background(), fmt.Sprintf("/v1/sessions/%s/modules/%d", w.id, task))
	w.count(res, err)
	if err != nil {
		return
	}
	if res.Status != http.StatusOK {
		if !faultStatus(res.Status) {
			w.agg.violation(task, "release: status %d: %s", res.Status, res.Body)
		}
		return
	}
	var resp service.SessionReleaseResponse
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		w.agg.violation(task, "release body: %v", err)
		return
	}
	if !resp.Released {
		w.agg.violation(task, "server claims task %d was not resident; shadow disagrees", task)
		return
	}
	w.occ.SetPoints(w.res[task].pts, false)
	delete(w.res, task)
}

// defrag asks the session to compact and replays the move schedule on
// the shadow.
func (w *sessionWorker) defrag() {
	res, err := w.c.Do(context.Background(), "/v1/sessions/"+w.id+"/defrag", nil)
	w.count(res, err)
	if err != nil {
		return
	}
	if res.Status != http.StatusOK {
		if !faultStatus(res.Status) {
			w.agg.violation(int64(w.worker), "defrag: status %d: %s", res.Status, res.Body)
		}
		return
	}
	var resp service.SessionDefragResponse
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		w.agg.violation(int64(w.worker), "defrag body: %v", err)
		return
	}
	w.applyMoves(int64(w.worker), resp.Moves)
}

// verifyStats cross-checks the server's view of the session against
// the shadow at the end of the run: same resident count, same number
// of occupied tiles.
func (w *sessionWorker) verifyStats() {
	res, err := w.c.Get(context.Background(), "/v1/sessions/"+w.id+"/stats")
	w.count(res, err)
	if err != nil {
		return
	}
	if res.Status != http.StatusOK {
		if !faultStatus(res.Status) && res.Status != http.StatusNotFound {
			w.agg.violation(int64(w.worker), "stats: status %d", res.Status)
		}
		return
	}
	var st service.SessionStatsResponse
	if err := json.Unmarshal(res.Body, &st); err != nil {
		w.agg.violation(int64(w.worker), "stats body: %v", err)
		return
	}
	if st.Residents != len(w.res) || st.OccupiedTiles != w.occ.Count() {
		w.agg.violation(int64(w.worker),
			"server/shadow divergence: server %d residents / %d tiles, shadow %d / %d",
			st.Residents, st.OccupiedTiles, len(w.res), w.occ.Count())
	}
}
