package grid

import (
	"math/bits"
	"strings"
)

// Bitmap is a dense 2D bit matrix over a w×h tile window anchored at
// (0, 0). It is the occupancy structure used by placers and by the geost
// kernel's sweep: a set bit marks an occupied (or forbidden) tile.
//
// Rows are stored as packed 64-bit words so that row-wise operations
// (shifted AND for collision tests, OR for placement) run a word at a
// time.
type Bitmap struct {
	w, h  int
	wpr   int // words per row
	words []uint64
}

// NewBitmap returns an all-zero bitmap of the given size. It panics if
// either dimension is negative.
func NewBitmap(w, h int) *Bitmap {
	if w < 0 || h < 0 {
		panic("grid: negative bitmap dimension")
	}
	wpr := (w + 63) / 64
	return &Bitmap{w: w, h: h, wpr: wpr, words: make([]uint64, wpr*h)}
}

// W returns the bitmap width in tiles.
func (b *Bitmap) W() int { return b.w }

// H returns the bitmap height in tiles.
func (b *Bitmap) H() int { return b.h }

// Bounds returns the rectangle [0,w)×[0,h).
func (b *Bitmap) Bounds() Rect { return Rect{0, 0, b.w, b.h} }

func (b *Bitmap) index(x, y int) (word int, bit uint) {
	return y*b.wpr + x>>6, uint(x & 63)
}

// Get reports the bit at (x, y); out-of-range coordinates read as false.
func (b *Bitmap) Get(x, y int) bool {
	if x < 0 || y < 0 || x >= b.w || y >= b.h {
		return false
	}
	w, bit := b.index(x, y)
	return b.words[w]&(1<<bit) != 0
}

// Set writes the bit at (x, y); out-of-range coordinates are ignored.
func (b *Bitmap) Set(x, y int, v bool) {
	if x < 0 || y < 0 || x >= b.w || y >= b.h {
		return
	}
	w, bit := b.index(x, y)
	if v {
		b.words[w] |= 1 << bit
	} else {
		b.words[w] &^= 1 << bit
	}
}

// SetRect sets every bit of r (clipped to the bitmap) to v.
func (b *Bitmap) SetRect(r Rect, v bool) {
	r = r.Intersect(b.Bounds())
	for y := r.MinY; y < r.MaxY; y++ {
		for x := r.MinX; x < r.MaxX; x++ {
			b.Set(x, y, v)
		}
	}
}

// SetPoints sets the bit at each point (clipped) to v.
func (b *Bitmap) SetPoints(ps []Point, v bool) {
	for _, p := range ps {
		b.Set(p.X, p.Y, v)
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of b.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{w: b.w, h: b.h, wpr: b.wpr, words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// Clear zeroes every bit.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// CopyFrom overwrites b with src. The bitmaps must have equal
// dimensions; a mismatch panics.
func (b *Bitmap) CopyFrom(src *Bitmap) {
	if b.w != src.w || b.h != src.h {
		panic("grid: CopyFrom dimension mismatch")
	}
	copy(b.words, src.words)
}

// AnyInRect reports whether any bit inside r (clipped) is set.
func (b *Bitmap) AnyInRect(r Rect) bool {
	r = r.Intersect(b.Bounds())
	for y := r.MinY; y < r.MaxY; y++ {
		for x := r.MinX; x < r.MaxX; x++ {
			if b.Get(x, y) {
				return true
			}
		}
	}
	return false
}

// AnyAt reports whether any of the points ps, translated by at, hits a
// set bit. Points landing outside the bitmap read as false.
func (b *Bitmap) AnyAt(ps []Point, at Point) bool {
	for _, p := range ps {
		if b.Get(p.X+at.X, p.Y+at.Y) {
			return true
		}
	}
	return false
}

// Or sets every bit that is set in src. Dimensions must match; a
// mismatch panics.
func (b *Bitmap) Or(src *Bitmap) {
	if b.w != src.w || b.h != src.h {
		panic("grid: Or dimension mismatch")
	}
	for i, w := range src.words {
		b.words[i] |= w
	}
}

// AndNot clears every bit that is set in src. Dimensions must match;
// a mismatch panics.
func (b *Bitmap) AndNot(src *Bitmap) {
	if b.w != src.w || b.h != src.h {
		panic("grid: AndNot dimension mismatch")
	}
	for i, w := range src.words {
		b.words[i] &^= w
	}
}

// Intersects reports whether b and src share a set bit. Dimensions
// must match; a mismatch panics.
func (b *Bitmap) Intersects(src *Bitmap) bool {
	if b.w != src.w || b.h != src.h {
		panic("grid: Intersects dimension mismatch")
	}
	for i, w := range src.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// MaxSetY returns the largest y holding a set bit, or -1 if the bitmap is
// empty.
func (b *Bitmap) MaxSetY() int {
	for y := b.h - 1; y >= 0; y-- {
		row := b.words[y*b.wpr : (y+1)*b.wpr]
		for _, w := range row {
			if w != 0 {
				return y
			}
		}
	}
	return -1
}

// CountRow returns the number of set bits in row y (0 when out of range).
func (b *Bitmap) CountRow(y int) int {
	if y < 0 || y >= b.h {
		return 0
	}
	n := 0
	for _, w := range b.words[y*b.wpr : (y+1)*b.wpr] {
		n += bits.OnesCount64(w)
	}
	return n
}

// String renders the bitmap with '#' for set and '.' for clear bits, top
// row (largest y) first, for debugging and golden tests.
func (b *Bitmap) String() string {
	var sb strings.Builder
	for y := b.h - 1; y >= 0; y-- {
		for x := 0; x < b.w; x++ {
			if b.Get(x, y) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		if y > 0 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
