package service

import (
	"fmt"
	"testing"

	"repro/internal/canon"
)

func dig(i int) canon.Digest {
	var d canon.Digest
	d[0] = byte(i)
	d[1] = byte(i >> 8)
	return d
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.Put(dig(1), []byte("one"))
	c.Put(dig(2), []byte("two"))
	if _, ok := c.Get(dig(1)); !ok { // 1 becomes most recent
		t.Fatal("entry 1 missing")
	}
	c.Put(dig(3), []byte("three")) // evicts 2, the least recently used
	if _, ok := c.Get(dig(2)); ok {
		t.Fatal("entry 2 survived eviction")
	}
	for _, i := range []int{1, 3} {
		if got, ok := c.Get(dig(i)); !ok || string(got) != map[int]string{1: "one", 3: "three"}[i] {
			t.Fatalf("entry %d wrong after eviction: %q ok=%v", i, got, ok)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU(2)
	c.Put(dig(1), []byte("a"))
	c.Put(dig(2), []byte("b"))
	c.Put(dig(1), []byte("a2")) // refresh value and recency; no growth
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	c.Put(dig(3), []byte("c")) // 2 is now the oldest
	if _, ok := c.Get(dig(2)); ok {
		t.Fatal("refreshed entry was evicted instead of the oldest")
	}
	if got, _ := c.Get(dig(1)); string(got) != "a2" {
		t.Fatalf("refresh lost: %q", got)
	}
}

func TestLRUReset(t *testing.T) {
	c := newLRU(4)
	for i := 0; i < 4; i++ {
		c.Put(dig(i), []byte{byte(i)})
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
	if _, ok := c.Get(dig(0)); ok {
		t.Fatal("entry survived reset")
	}
	// Refill past capacity: eviction bookkeeping must still work.
	for i := 0; i < 6; i++ {
		c.Put(dig(i), []byte{byte(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("len after refill = %d, want 4", c.Len())
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := newLRU(0)
	c.Put(dig(1), []byte("x"))
	c.Put(dig(2), []byte("y"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamps to 1)", c.Len())
	}
}

func TestLRUDistinctKeysKeepDistinctBodies(t *testing.T) {
	c := newLRU(64)
	for i := 0; i < 64; i++ {
		c.Put(dig(i), []byte(fmt.Sprintf("body-%d", i)))
	}
	for i := 0; i < 64; i++ {
		got, ok := c.Get(dig(i))
		if !ok || string(got) != fmt.Sprintf("body-%d", i) {
			t.Fatalf("key %d: got %q ok=%v", i, got, ok)
		}
	}
}
