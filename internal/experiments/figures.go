package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/render"
	"repro/internal/workload"
)

// Fig1 regenerates Figure 1: one module rendered as five functionally
// equivalent design alternatives consuming identical resources but with
// different layouts (and hence different bounding boxes).
func Fig1() string {
	m, err := module.GenerateAlternatives("fig1", module.Demand{CLB: 18, BRAM: 2},
		module.AlternativeOptions{Count: 5})
	if err != nil {
		//solverlint:allow nakedpanic the demand is a fixed literal; GenerateAlternatives cannot fail on it
		panic(err)
	}
	var sb strings.Builder
	sb.WriteString(render.ShapeAlternatives(m))
	sb.WriteString("\nAll alternatives consume ")
	sb.WriteString(m.Shape(0).Histogram().String())
	sb.WriteString("; glyphs: c=CLB tile, b=BRAM tile, .=unused bounding-box cell\n")
	return sb.String()
}

// figDevice builds the small heterogeneous region used by Figures 3
// and 4: 24×12 with two BRAM columns.
func figDevice() *fabric.Device {
	spec := fabric.Spec{
		Name:        "fig-24x12",
		W:           24,
		H:           12,
		BRAMColumns: []int{4, 16},
	}
	return spec.MustBuild()
}

// figPlaceBoth places mods on region with and without design
// alternatives and renders the two placements side by side, mirroring
// Figures 3 and 5 (top/bottom in the paper).
func figPlaceBoth(region *fabric.Region, mods []*module.Module) (string, error) {
	p := core.New(region, core.Options{Timeout: 20 * time.Second, StallNodes: 4000})
	with, err := p.Place(mods)
	if err != nil {
		return "", err
	}
	if err := with.Validate(region); err != nil {
		return "", err
	}
	without, err := p.Place(workload.FirstShapesOnly(mods))
	if err != nil {
		return "", err
	}
	if err := without.Validate(region); err != nil {
		return "", err
	}
	left := fmt.Sprintf("With design alternatives: %v", with)
	right := fmt.Sprintf("Without design alternatives: %v", without)
	return render.SideBySide(
		left, render.Placements(region, with.Placements),
		right, render.Placements(region, without.Placements),
	), nil
}

// Fig3 regenerates Figure 3: optimal placement of a module set where
// each module carries two layouts (base and its 180° rotation), against
// the same set restricted to the base layout.
func Fig3() (string, error) {
	region := figDevice().FullRegion()
	rng := rand.New(rand.NewSource(1))
	mods, err := workload.Generate(workload.Config{
		NumModules: 6,
		CLBMin:     6, CLBMax: 14,
		BRAMMin: 0, BRAMMax: 2,
		Alternatives: 2, // base + rot180
	}, rng)
	if err != nil {
		return "", err
	}
	return figPlaceBoth(region, mods)
}

// Fig4 regenerates the four constraint-illustration panels of Figure 4:
// (a) the partial-region bounding box, (b) resource-feasible anchors of
// one module, (c) the reconfigurable region after masking a static
// partition, (d) a placed module shadowing its area.
func Fig4() (string, error) {
	dev := figDevice()
	region := dev.FullRegion()
	m, err := module.GenerateAlternatives("m", module.Demand{CLB: 8, BRAM: 2},
		module.AlternativeOptions{Count: 1})
	if err != nil {
		return "", err
	}
	shape := m.Shape(0)

	var sb strings.Builder
	sb.WriteString("(a) Module placement constrained to the partial region bounding box:\n")
	sb.WriteString(render.Region(region))
	sb.WriteString("\n\n(b) Resource-feasible anchor positions (*) of the module below:\n")
	sb.WriteString(render.Shape(shape))
	sb.WriteString("\n--\n")
	sb.WriteString(render.AnchorMask(region, core.ValidAnchors(region, shape)))

	masked := dev.Clone()
	masked.MaskStatic(grid.RectXYWH(12, 0, 12, 12)) // right half static
	maskedRegion := masked.FullRegion()
	sb.WriteString("\n\n(c) Placement restricted to the reconfigurable region (right half static '#'):\n")
	sb.WriteString(render.Region(maskedRegion))

	res, err := core.New(maskedRegion, core.Options{}).Place([]*module.Module{m})
	if err != nil {
		return "", err
	}
	if !res.Found {
		return "", fmt.Errorf("experiments: fig4 module unplaceable")
	}
	sb.WriteString("\n\n(d) A placed module; no other module may overlap its tiles:\n")
	sb.WriteString(render.Placements(maskedRegion, res.Placements))
	sb.WriteString("\n")
	return sb.String(), nil
}

// Fig5 regenerates Figure 5: a larger module set placed with and
// without optional design alternatives.
func Fig5() (string, error) {
	spec := fabric.Spec{
		Name:        "fig5-36x24",
		W:           36,
		H:           24,
		BRAMColumns: []int{5, 17, 29},
		DSPColumns:  []int{16},
	}
	region := spec.MustBuild().FullRegion()
	rng := rand.New(rand.NewSource(5))
	mods, err := workload.Generate(workload.Config{
		NumModules: 12,
		CLBMin:     8, CLBMax: 24,
		BRAMMin: 0, BRAMMax: 3,
		Alternatives: 4,
	}, rng)
	if err != nil {
		return "", err
	}
	return figPlaceBoth(region, mods)
}
