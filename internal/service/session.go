package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/obs"
	"repro/internal/online"
)

// The session API is the daemon's online serving mode: where /v1/place
// solves one stateless batch, a session is a long-lived fabric with
// modules arriving and departing over time. Each session owns an
// online.State (shadow occupancy + resident set) guarded by a
// per-session mutex; the store evicts sessions idle past the TTL and,
// at capacity, the least recently used.
//
// Session solves (the CP replan behind a blocked arrival, the
// compaction behind /defrag) deliberately do NOT go through the
// stateless worker pool: a pooled solve runs detached and may outlive
// its request, which is exactly wrong for an operation that mutates
// session state — the client must observe the true outcome. Instead a
// Workers-sized slot set bounds concurrent session solves inline; when
// it is saturated a place request degrades to the greedy-only path
// (X-Placement-Quality: approximate) if degradation is enabled, and is
// shed with 429 otherwise.

// session is one live fabric. mu serialises all State access; lastUsed
// and elem belong to the store and are guarded by the store's lock.
type session struct {
	id      string
	fabric  string
	created time.Time

	mu    sync.Mutex
	state *online.State

	lastUsed time.Time
	elem     *list.Element
}

// sessionStore is the TTL+LRU session table. Eviction is lazy — swept
// on every add/get under the store lock — so the store needs no
// background goroutine and cannot leak one.
type sessionStore struct {
	mu   sync.Mutex
	max  int
	ttl  time.Duration
	now  func() time.Time
	byID map[string]*session
	lru  *list.List // front = most recently used
}

func newSessionStore(max int, ttl time.Duration, now func() time.Time) *sessionStore {
	if now == nil {
		now = time.Now
	}
	return &sessionStore{
		max:  max,
		ttl:  ttl,
		now:  now,
		byID: map[string]*session{},
		lru:  list.New(),
	}
}

// sweep drops expired sessions; the caller holds st.mu.
func (st *sessionStore) sweep(now time.Time) (expired int) {
	for {
		back := st.lru.Back()
		if back == nil {
			break
		}
		sess := back.Value.(*session)
		if now.Sub(sess.lastUsed) <= st.ttl {
			break
		}
		st.lru.Remove(back)
		delete(st.byID, sess.id)
		expired++
	}
	return expired
}

// add registers a new session, evicting expired sessions and — at
// capacity — the least recently used live one.
func (st *sessionStore) add(sess *session) (expired, evicted int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	expired = st.sweep(now)
	for st.lru.Len() >= st.max {
		back := st.lru.Back()
		old := back.Value.(*session)
		st.lru.Remove(back)
		delete(st.byID, old.id)
		evicted++
	}
	sess.lastUsed = now
	sess.elem = st.lru.PushFront(sess)
	st.byID[sess.id] = sess
	return expired, evicted
}

// get returns the session and bumps its recency; a missing or expired
// id returns (nil, expired-count).
func (st *sessionStore) get(id string) (*session, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	expired := st.sweep(now)
	sess, ok := st.byID[id]
	if !ok {
		return nil, expired
	}
	sess.lastUsed = now
	st.lru.MoveToFront(sess.elem)
	return sess, expired
}

// remove deletes a session; false when it was not present.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.byID[id]
	if !ok {
		return false
	}
	st.lru.Remove(sess.elem)
	delete(st.byID, id)
	return true
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}

// SessionCreateRequest is the wire form of POST /v1/sessions.
type SessionCreateRequest struct {
	// Fabric names a catalog device (required).
	Fabric string `json:"fabric"`
	// Region optionally windows the device.
	Region *RectSpec `json:"region,omitempty"`
	// Manager selects the greedy policy: "first-fit" (default),
	// "mer-best-fit", or "occupied-space"/"adjacency".
	Manager string `json:"manager,omitempty"`
	// UseAlternatives lets the greedy policy pick among design
	// alternatives.
	UseAlternatives bool `json:"useAlternatives,omitempty"`
	// Replan budgets the CP solves behind replanning and
	// defragmentation; zero fields take the daemon defaults.
	Replan OptionsSpec `json:"replan"`
}

// SessionInfo is the wire form of a created session.
type SessionInfo struct {
	Session string `json:"session"`
	Fabric  string `json:"fabric"`
	Manager string `json:"manager"`
	W       int    `json:"w"`
	H       int    `json:"h"`
}

// SessionPlaceRequest is the wire form of POST /v1/sessions/{id}/place.
// The module is always explicit — the client must know the shapes it
// asked for, because the session contract lets it revalidate every
// placement against its own shadow occupancy.
type SessionPlaceRequest struct {
	// Task is the client-chosen id for this module instance; release
	// refers to it. Must be non-negative and not currently resident.
	Task   int64       `json:"task"`
	Module *ModuleSpec `json:"module"`
}

// MoveSpec is one relocation of a replan or defrag schedule, priced by
// the fabric's frame model.
type MoveSpec struct {
	Task       int64   `json:"task"`
	Shape      int     `json:"shape"`
	X          int     `json:"x"`
	Y          int     `json:"y"`
	Frames     int     `json:"frames"`
	ReconfigMs float64 `json:"reconfigMs"`
}

// SessionPlaceResponse is the wire form of a place outcome. Placed
// false with status 200 is a capacity rejection: the fabric cannot
// take the module even after replanning.
type SessionPlaceResponse struct {
	Session string `json:"session"`
	Task    int64  `json:"task"`
	Placed  bool   `json:"placed"`
	Shape   int    `json:"shape"`
	X       int    `json:"x"`
	Y       int    `json:"y"`
	W       int    `json:"w"`
	H       int    `json:"h"`
	// Replanned reports that greedy placement failed and a CP replan
	// relocated residents to admit the module; Moves lists those
	// relocations in apply order.
	Replanned  bool       `json:"replanned,omitempty"`
	Moves      []MoveSpec `json:"moves,omitempty"`
	ReconfigMs float64    `json:"reconfigMs"`
	// Quality is "approximate" when solver saturation degraded this
	// request to greedy-only placement (no replan fallback).
	Quality string `json:"quality,omitempty"`
}

// SessionReleaseResponse is the wire form of a module release.
type SessionReleaseResponse struct {
	Session string `json:"session"`
	Task    int64  `json:"task"`
	// Released is false when the task was not resident — releasing is
	// idempotent, so a retried DELETE is a 200, not an error.
	Released bool `json:"released"`
}

// SessionDefragResponse is the wire form of a compaction pass.
type SessionDefragResponse struct {
	Session    string     `json:"session"`
	Moves      []MoveSpec `json:"moves"`
	ReconfigMs float64    `json:"reconfigMs"`
	FragBefore float64    `json:"fragBefore"`
	FragAfter  float64    `json:"fragAfter"`
}

// SessionResident is one resident module in a stats response.
type SessionResident struct {
	Task   int64  `json:"task"`
	Module string `json:"module"`
	Shape  int    `json:"shape"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	W      int    `json:"w"`
	H      int    `json:"h"`
}

// SessionStatsResponse is the wire form of GET /v1/sessions/{id}/stats.
type SessionStatsResponse struct {
	Session       string  `json:"session"`
	Fabric        string  `json:"fabric"`
	Manager       string  `json:"manager"`
	Residents     int     `json:"residents"`
	OccupiedTiles int     `json:"occupiedTiles"`
	Utilization   float64 `json:"utilization"`
	// Fragmentation is the free-space fragmentation metric in the
	// occupied span: 0 means the free space is one solid rectangle,
	// values toward 1 mean it is badly scattered.
	Fragmentation float64           `json:"fragmentation"`
	Placed        int               `json:"placed"`
	Rejected      int               `json:"rejected"`
	Replans       int               `json:"replans"`
	Defrags       int               `json:"defrags"`
	Moves         int               `json:"moves"`
	ReconfigMs    float64           `json:"reconfigMs"`
	Residency     []SessionResident `json:"residency"`
}

// ModuleSpecFor renders a module back into wire form — the bridge
// session clients (cmd/loadgen) use to send generated modules as
// explicit specs they can later revalidate against.
func ModuleSpecFor(m *module.Module) ModuleSpec {
	spec := ModuleSpec{Name: m.Name(), Shapes: make([]ShapeSpec, m.NumShapes())}
	for i := 0; i < m.NumShapes(); i++ {
		tiles := m.Shape(i).Tiles()
		ss := ShapeSpec{Tiles: make([]TileSpec, len(tiles))}
		for j, t := range tiles {
			ss.Tiles[j] = TileSpec{X: t.At.X, Y: t.At.Y, Kind: t.Kind.String()}
		}
		spec.Shapes[i] = ss
	}
	return spec
}

// checkSessionFault evaluates a fault site on the session path and
// writes the mapped failure (injected error → 503 unavailable backend,
// injected timeout → 504 lock/budget miss) after imposing any injected
// latency. True means the fault consumed the request.
func (s *Server) checkSessionFault(w http.ResponseWriter, out *placeOutcome, site faultinject.Site) bool {
	fault := s.faults.Check(site)
	if fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	switch {
	case fault.Err != nil:
		s.failPlace(w, out, http.StatusServiceUnavailable, fmt.Errorf("session backend unavailable (%s)", site))
		return true
	case fault.Timeout:
		s.failPlace(w, out, http.StatusGatewayTimeout, fmt.Errorf("session operation timed out (%s)", site))
		return true
	}
	return false
}

// lookupSession resolves {id} from the request path, bumping recency;
// a missing or expired session answers 404.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request, out *placeOutcome) *session {
	id := r.PathValue("id")
	sess, expired := s.sessions.get(id)
	s.sessExpired.Add(int64(expired))
	if sess == nil {
		s.failPlace(w, out, http.StatusNotFound, fmt.Errorf("unknown session %q (expired or never created)", id))
		return nil
	}
	return sess
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request, tr *obs.Trace, out *placeOutcome) {
	if s.checkSessionFault(w, out, faultinject.SiteSession) {
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var wire SessionCreateRequest
	if err := dec.Decode(&wire); err != nil {
		s.failPlace(w, out, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if wire.Fabric == "" {
		s.failPlace(w, out, http.StatusBadRequest, fmt.Errorf("missing fabric"))
		return
	}
	dev, err := fabric.ByName(wire.Fabric)
	if err != nil {
		s.failPlace(w, out, http.StatusBadRequest, err)
		return
	}
	region := dev.FullRegion()
	if wire.Region != nil {
		if wire.Region.W <= 0 || wire.Region.H <= 0 {
			s.failPlace(w, out, http.StatusBadRequest,
				fmt.Errorf("region %dx%d must have positive size", wire.Region.W, wire.Region.H))
			return
		}
		region = dev.Region(grid.RectXYWH(wire.Region.X, wire.Region.Y, wire.Region.W, wire.Region.H))
		if region.W() <= 0 || region.H() <= 0 {
			s.failPlace(w, out, http.StatusBadRequest, fmt.Errorf("region lies outside fabric %s", wire.Fabric))
			return
		}
	}
	replan, err := wire.Replan.toRequestOptions(s.cfg)
	if err != nil {
		s.failPlace(w, out, http.StatusBadRequest, err)
		return
	}
	state, err := online.NewState(region, online.StateConfig{
		Manager:         wire.Manager,
		UseAlternatives: wire.UseAlternatives,
		Replan:          replan.Options(),
	})
	if err != nil {
		s.failPlace(w, out, http.StatusBadRequest, err)
		return
	}
	sess := &session{
		id:      obs.NewTraceID().String(),
		fabric:  wire.Fabric,
		created: time.Now(),
		state:   state,
	}
	expired, evicted := s.sessions.add(sess)
	s.sessExpired.Add(int64(expired))
	s.sessEvicted.Add(int64(evicted))
	s.sessCreated.Inc()
	if sp := tr.StartSpan("session_create"); sp != nil {
		sp.SetAttrs(obs.String("session", sess.id), obs.String("manager", state.ManagerName()))
		sp.End()
	}
	writeJSON(w, http.StatusOK, SessionInfo{
		Session: sess.id,
		Fabric:  wire.Fabric,
		Manager: state.ManagerName(),
		W:       region.W(),
		H:       region.H(),
	})
}

func (s *Server) handleSessionPlace(w http.ResponseWriter, r *http.Request, tr *obs.Trace, out *placeOutcome) {
	if s.checkSessionFault(w, out, faultinject.SiteSession) {
		return
	}
	sess := s.lookupSession(w, r, out)
	if sess == nil {
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var wire SessionPlaceRequest
	if err := dec.Decode(&wire); err != nil {
		s.failPlace(w, out, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if wire.Task < 0 {
		s.failPlace(w, out, http.StatusBadRequest, fmt.Errorf("negative task id %d", wire.Task))
		return
	}
	if wire.Module == nil {
		s.failPlace(w, out, http.StatusBadRequest, fmt.Errorf("place request needs a module"))
		return
	}
	mod, err := wire.Module.toModule()
	if err != nil {
		s.failPlace(w, out, http.StatusBadRequest, err)
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	id := online.TaskID(wire.Task)
	if _, resident := sess.state.Resident(id); resident {
		s.failPlace(w, out, http.StatusConflict, fmt.Errorf("task %d already resident in session", wire.Task))
		return
	}

	quality := QualityExact
	var result online.PlaceOutcome
	sp := tr.StartSpan("session_place")
	start := time.Now()
	if s.acquireSessionSlot() {
		// The inline solve deliberately runs under the session lock:
		// the whole point of a session is that its mutations are
		// serialised, and the slot set bounds how many such solves run
		// at once. Responses are also written under the lock so the
		// answer reflects exactly the state the client's shadow will
		// replay.
		//solverlint:allow lockscope per-session serialisation is the contract; concurrency is bounded by sessionSlots, not by shortening this critical section
		result, err = sess.state.Place(id, mod)
		s.releaseSessionSlot()
	} else if s.cfg.Degrade {
		// Solver capacity is saturated: fall back to the greedy-only
		// path. A greedy decision costs microseconds and needs no
		// solver slot; the client loses only the replan fallback.
		quality = QualityApproximate
		result, err = sess.state.PlaceGreedy(id, mod)
		s.degraded.Inc()
	} else {
		if sp != nil {
			sp.SetAttrs(obs.String("error", "shed"))
			sp.End()
		}
		s.rejected.Inc()
		//solverlint:allow lockscope in-memory response writer; writing under the session lock keeps the answer consistent with the state the client replays
		w.Header().Set("Retry-After", "1")
		s.failPlace(w, out, http.StatusTooManyRequests, fmt.Errorf("session solver capacity saturated, retry later"))
		return
	}
	out.solveNs.Store(int64(time.Since(start)))
	if sp != nil {
		sp.SetAttrs(
			obs.Bool("placed", result.Placed),
			obs.Bool("replanned", result.Replanned),
			obs.Int("moves", int64(len(result.Moves))),
		)
		if err != nil {
			sp.SetAttrs(obs.String("error", err.Error()))
		}
		sp.End()
	}
	if err != nil {
		// Input errors were screened above; what remains is an internal
		// invariant violation (manager/shadow disagreement).
		s.errCount.Inc()
		s.failPlace(w, out, http.StatusInternalServerError, err)
		return
	}
	if result.Replanned {
		s.sessReplans.Inc()
	}
	out.quality = ""
	if quality != QualityExact {
		out.quality = quality
	}
	resp := SessionPlaceResponse{
		Session:    sess.id,
		Task:       wire.Task,
		Placed:     result.Placed,
		Replanned:  result.Replanned,
		Moves:      moveSpecs(result.Moves),
		ReconfigMs: float64(result.Reconfig.Microseconds()) / 1e3,
	}
	if quality != QualityExact {
		resp.Quality = quality
	}
	if result.Placed {
		shape := mod.Shape(result.Placement.Shape)
		resp.Shape = result.Placement.Shape
		resp.X = result.Placement.At.X
		resp.Y = result.Placement.At.Y
		resp.W = shape.W()
		resp.H = shape.H()
	}
	//solverlint:allow lockscope in-memory response writer; writing under the session lock keeps the answer consistent with the state the client replays
	w.Header().Set("X-Placement-Quality", quality)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionRelease(w http.ResponseWriter, r *http.Request, tr *obs.Trace, out *placeOutcome) {
	if s.checkSessionFault(w, out, faultinject.SiteSession) {
		return
	}
	sess := s.lookupSession(w, r, out)
	if sess == nil {
		return
	}
	task, err := strconv.ParseInt(r.PathValue("task"), 10, 64)
	if err != nil {
		s.failPlace(w, out, http.StatusBadRequest, fmt.Errorf("bad task id %q", r.PathValue("task")))
		return
	}
	sess.mu.Lock()
	released := sess.state.Release(online.TaskID(task))
	sess.mu.Unlock()
	if sp := tr.StartSpan("session_release"); sp != nil {
		sp.SetAttrs(obs.Bool("released", released))
		sp.End()
	}
	writeJSON(w, http.StatusOK, SessionReleaseResponse{Session: sess.id, Task: task, Released: released})
}

func (s *Server) handleSessionDefrag(w http.ResponseWriter, r *http.Request, tr *obs.Trace, out *placeOutcome) {
	if s.checkSessionFault(w, out, faultinject.SiteSession) {
		return
	}
	if s.checkSessionFault(w, out, faultinject.SiteDefrag) {
		return
	}
	sess := s.lookupSession(w, r, out)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !s.acquireSessionSlot() {
		s.rejected.Inc()
		//solverlint:allow lockscope in-memory response writer; writing under the session lock keeps the answer consistent with the state the client replays
		w.Header().Set("Retry-After", "1")
		s.failPlace(w, out, http.StatusTooManyRequests, fmt.Errorf("session solver capacity saturated, retry later"))
		return
	}
	sp := tr.StartSpan("session_defrag")
	start := time.Now()
	result, err := sess.state.Defrag()
	s.releaseSessionSlot()
	out.solveNs.Store(int64(time.Since(start)))
	if sp != nil {
		sp.SetAttrs(obs.Int("moves", int64(len(result.Moves))))
		if err != nil {
			sp.SetAttrs(obs.String("error", err.Error()))
		}
		sp.End()
	}
	if err != nil {
		s.errCount.Inc()
		s.failPlace(w, out, http.StatusInternalServerError, err)
		return
	}
	s.sessDefrags.Inc()
	moves := moveSpecs(result.Moves)
	if moves == nil {
		moves = []MoveSpec{} // an empty schedule is "nothing to do", not null
	}
	writeJSON(w, http.StatusOK, SessionDefragResponse{
		Session:    sess.id,
		Moves:      moves,
		ReconfigMs: float64(result.Reconfig.Microseconds()) / 1e3,
		FragBefore: result.FragBefore,
		FragAfter:  result.FragAfter,
	})
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request, tr *obs.Trace, out *placeOutcome) {
	if s.checkSessionFault(w, out, faultinject.SiteSession) {
		return
	}
	sess := s.lookupSession(w, r, out)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	st := sess.state.Stats()
	residents := sess.state.Residents()
	manager := sess.state.ManagerName()
	sess.mu.Unlock()
	residency := make([]SessionResident, 0, len(residents))
	for _, res := range residents {
		shape := res.Module.Shape(res.Shape)
		residency = append(residency, SessionResident{
			Task:   int64(res.ID),
			Module: res.Module.Name(),
			Shape:  res.Shape,
			X:      res.At.X,
			Y:      res.At.Y,
			W:      shape.W(),
			H:      shape.H(),
		})
	}
	writeJSON(w, http.StatusOK, SessionStatsResponse{
		Session:       sess.id,
		Fabric:        sess.fabric,
		Manager:       manager,
		Residents:     st.Residents,
		OccupiedTiles: st.OccupiedTiles,
		Utilization:   st.Utilization,
		Fragmentation: st.Fragmentation,
		Placed:        st.Placed,
		Rejected:      st.Rejected,
		Replans:       st.Replans,
		Defrags:       st.Defrags,
		Moves:         st.Moves,
		ReconfigMs:    float64(st.TotalReconfig.Microseconds()) / 1e3,
		Residency:     residency,
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request, tr *obs.Trace, out *placeOutcome) {
	if s.checkSessionFault(w, out, faultinject.SiteSession) {
		return
	}
	id := r.PathValue("id")
	closed := s.sessions.remove(id)
	// Idempotent like module release: deleting a gone session is 200.
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "closed": closed})
}

// acquireSessionSlot takes one inline-solve slot without blocking;
// false means session solver capacity is saturated.
func (s *Server) acquireSessionSlot() bool {
	select {
	case s.sessionSlots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) releaseSessionSlot() { <-s.sessionSlots }

func moveSpecs(moves []online.MoveCost) []MoveSpec {
	if len(moves) == 0 {
		return nil
	}
	out := make([]MoveSpec, len(moves))
	for i, mv := range moves {
		out[i] = MoveSpec{
			Task:       int64(mv.ID),
			Shape:      mv.Shape,
			X:          mv.At.X,
			Y:          mv.At.Y,
			Frames:     mv.Frames,
			ReconfigMs: float64(mv.Reconfig.Microseconds()) / 1e3,
		}
	}
	return out
}
