package core

import (
	"fmt"
	"time"

	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/module"
)

// Placement records where one module landed: the chosen design
// alternative and the anchor of its bounding box in region-local
// coordinates.
type Placement struct {
	Module     *module.Module
	ShapeIndex int
	At         grid.Point
}

// Shape returns the chosen design alternative.
func (p Placement) Shape() *module.Shape { return p.Module.Shape(p.ShapeIndex) }

// Tiles returns the absolute region tiles the placement occupies.
func (p Placement) Tiles() []grid.Point {
	pts := p.Shape().Points()
	for i := range pts {
		pts[i] = pts[i].Add(p.At)
	}
	return pts
}

// Bounds returns the absolute bounding box of the placement.
func (p Placement) Bounds() grid.Rect {
	s := p.Shape()
	return grid.RectXYWH(p.At.X, p.At.Y, s.W(), s.H())
}

// Top returns the first row above the placement (y + height).
func (p Placement) Top() int { return p.At.Y + p.Shape().H() }

// String renders "name@(x,y)/shapeN".
func (p Placement) String() string {
	return fmt.Sprintf("%s@%v/shape%d", p.Module.Name(), p.At, p.ShapeIndex)
}

// Result is the outcome of a placement run.
type Result struct {
	// Found reports whether any complete placement was found.
	Found bool
	// Placements holds one entry per module (in input order) when Found.
	Placements []Placement
	// Height is the occupied height (maximum Top over placements).
	Height int
	// Utilization is the average resource utilization within the
	// occupied extent (the paper's headline metric).
	Utilization float64
	// Optimal reports whether branch-and-bound proved Height optimal.
	Optimal bool
	// Stalled reports that optimisation stopped via the StallNodes
	// convergence criterion rather than by exhausting the search space.
	Stalled bool
	// Reason says why the underlying search ended (exhausted, timeout,
	// stalled or cut), removing the ambiguity of a silent stop.
	Reason csp.StopReason
	// Nodes is the number of search nodes explored.
	Nodes int64
	// Backtracks counts dead ends hit during the search.
	Backtracks int64
	// Propagations counts propagator executions during the search.
	Propagations int64
	// ObjectiveTrace records every improving solution (objective value,
	// node count and wall-clock offset), reconstructing the solver's
	// anytime behaviour. Empty in first-solution-only mode. When
	// presolve found a warm placement, the first point is that placement
	// at node zero.
	ObjectiveTrace []csp.ObjectivePoint
	// PresolveStats summarises what the presolve pipeline achieved; nil
	// when presolve did not run (PresolveOff or first-solution-only).
	PresolveStats *PresolveStats
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// PresolveStats reports per-technique presolve effect on one request.
type PresolveStats struct {
	// AlternativesDropped counts design alternatives removed by
	// dominance elimination.
	AlternativesDropped int
	// LexConstraints counts symmetry-breaking lex orderings posted
	// between interchangeable modules.
	LexConstraints int
	// BoundDelta is how many rows presolve raised the height objective's
	// lower bound.
	BoundDelta int
	// WarmHeight is the occupied height of the warm-start placement, or
	// 0 when the heuristic found none.
	WarmHeight int
}

// Occupancy paints the placements into a fresh bitmap of the region's
// dimensions.
func (res *Result) Occupancy(r *fabric.Region) *grid.Bitmap {
	b := grid.NewBitmap(r.W(), r.H())
	for _, p := range res.Placements {
		b.SetPoints(p.Tiles(), true)
	}
	return b
}

// String summarises the result in one line.
func (res *Result) String() string {
	if !res.Found {
		return fmt.Sprintf("no placement (nodes=%d, %v)", res.Nodes, res.Elapsed)
	}
	opt := "anytime/" + res.Reason.String()
	if res.Optimal {
		opt = "optimal"
	}
	return fmt.Sprintf("height=%d util=%.1f%% (%s, nodes=%d, %v)",
		res.Height, res.Utilization*100, opt, res.Nodes, res.Elapsed)
}

// Validate checks the paper's constraints M_a, M_b and M_c on a result:
// every tile inside the region on a matching resource, and no two
// placements sharing a tile. It returns nil for valid results and is
// used by tests and as a post-solve assertion.
func (res *Result) Validate(r *fabric.Region) error {
	if !res.Found {
		return nil
	}
	occ := grid.NewBitmap(r.W(), r.H())
	for _, p := range res.Placements {
		s := p.Shape()
		for _, t := range s.Tiles() {
			x, y := p.At.X+t.At.X, p.At.Y+t.At.Y
			if x < 0 || y < 0 || x >= r.W() || y >= r.H() {
				return fmt.Errorf("core: %v tile (%d,%d) outside region (violates M_a)", p, x, y)
			}
			if got := r.KindAt(x, y); got != t.Kind {
				return fmt.Errorf("core: %v tile (%d,%d) on %s, needs %s (violates M_b)", p, x, y, got, t.Kind)
			}
			if occ.Get(x, y) {
				return fmt.Errorf("core: %v overlaps at (%d,%d) (violates M_c)", p, x, y)
			}
			occ.Set(x, y, true)
		}
		if p.Top() > res.Height {
			return fmt.Errorf("core: %v exceeds reported height %d", p, res.Height)
		}
	}
	if top := occ.MaxSetY(); top+1 != res.Height {
		return fmt.Errorf("core: reported height %d != occupied height %d", res.Height, top+1)
	}
	want := metrics.Utilization(r, occ)
	if diff := res.Utilization - want; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("core: reported utilization %v != recomputed %v", res.Utilization, want)
	}
	return nil
}
