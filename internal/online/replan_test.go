package online

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
)

func TestReplanFallsBackToFirstFit(t *testing.T) {
	region := fabric.Homogeneous(8, 8).FullRegion()
	mgr := &ReplanFirstFit{FirstFit: FirstFit{UseAlternatives: true}}
	tasks := []Task{
		{ID: 0, Module: clbModule("a", 3, 3), Arrive: 0, Duration: 100},
	}
	st, err := Simulate(region, mgr, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 1 || st.Moves != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReplanDefragmentsToAdmit(t *testing.T) {
	// An 8x4 region. Three full-height 2x4 columns land side by side;
	// the middle one departs, leaving two 2-wide gaps (columns 2-3 and
	// 6-7). A 4x2 bar then arrives: plain first-fit has no 4 contiguous
	// free columns and rejects it; CP replan slides the right column
	// left and admits the bar.
	region := fabric.Homogeneous(8, 4).FullRegion()
	tasks := []Task{
		{ID: 0, Module: clbModule("a", 2, 4), Arrive: 0, Duration: 1000},
		{ID: 1, Module: clbModule("b", 2, 4), Arrive: 1, Duration: 5},
		{ID: 2, Module: clbModule("c", 2, 4), Arrive: 2, Duration: 1000},
		{ID: 3, Module: clbModule("bar", 4, 2), Arrive: 50, Duration: 100},
	}
	plain, err := Simulate(region, &FirstFit{}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Accepted != 3 {
		t.Fatalf("premise broken: plain accepted %d, want 3", plain.Accepted)
	}
	replan, err := Simulate(region, &ReplanFirstFit{
		Budget: core.Options{Timeout: 5 * time.Second},
	}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if replan.Accepted != 4 {
		t.Fatalf("replan accepted %d, want 4 (moves=%d)", replan.Accepted, replan.Moves)
	}
	if replan.Moves == 0 {
		t.Fatal("replan admitted the bar without any relocation?")
	}
}

func TestReplanImprovesServiceOnStream(t *testing.T) {
	dev := (&fabric.Spec{Name: "t", W: 24, H: 12, BRAMColumns: []int{4, 16}}).MustBuild()
	region := dev.FullRegion()
	stream := StreamConfig{Tasks: 60, MeanInterarrival: 2, MeanDuration: 60}
	stream.Library.CLBMin, stream.Library.CLBMax = 6, 18
	stream.Library.BRAMMax = 1
	stream.Library.Alternatives = 4
	stream.Library.NumModules = 1
	tasks, err := GenerateStream(stream, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate(region, &FirstFit{UseAlternatives: true}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	replan, err := Simulate(region, &ReplanFirstFit{
		FirstFit: FirstFit{UseAlternatives: true},
		Budget:   core.Options{Timeout: 5 * time.Second, StallNodes: 200},
	}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if replan.Accepted < plain.Accepted {
		t.Fatalf("replan (%d) worse than plain (%d)", replan.Accepted, plain.Accepted)
	}
	if replan.Moves == 0 && replan.Accepted == plain.Accepted {
		t.Log("no replans triggered on this stream")
	}
	t.Logf("plain=%v replan=%v moves=%d", plain, replan, replan.Moves)
}

func TestReplanMovesValidatedBySimulator(t *testing.T) {
	// The simulator revalidates every reported move; a manager lying
	// about moves must be caught. Use a stub around ReplanFirstFit.
	region := fabric.Homogeneous(4, 4).FullRegion()
	mgr := &lyingMover{}
	tasks := []Task{
		{ID: 0, Module: clbModule("a", 2, 2), Arrive: 0, Duration: 100},
		{ID: 1, Module: clbModule("b", 2, 2), Arrive: 1, Duration: 100},
	}
	if _, err := Simulate(region, mgr, tasks, fabric.DefaultFrameModel()); err == nil {
		t.Fatal("invalid move accepted")
	}
}

// lyingMover places the first task, then reports a bogus move.
type lyingMover struct {
	FirstFit
	moved bool
}

func (m *lyingMover) Name() string { return "liar" }

func (m *lyingMover) PendingMoves() []Move {
	if m.moved {
		m.moved = false
		return []Move{{ID: 0, Shape: 0, At: grid.Pt(9, 9)}} // out of range
	}
	return nil
}

func (m *lyingMover) TryPlace(t Task) (Placement, bool) {
	if t.ID == 1 {
		m.moved = true
	}
	return m.FirstFit.TryPlace(t)
}
