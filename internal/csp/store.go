package csp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// ErrInconsistent is returned by propagation when some variable's domain
// became empty: the current search node admits no solution.
var ErrInconsistent = errors.New("csp: inconsistent (empty domain)")

// Var is a finite-domain integer variable. Mutate its domain only
// through Store methods so changes are trailed for backtracking and
// watching propagators are scheduled.
type Var struct {
	id       int
	name     string
	dom      *Domain
	watchers []int // indices into Store.props

	// trailedAt is the trail level at which the current domain object
	// was installed; a mutation at a deeper level must clone first
	// (copy-on-write trailing).
	trailedAt int
}

// Name returns the variable name.
func (v *Var) Name() string { return v.name }

// ID returns the variable's index in its store's creation order. Store
// cloning preserves ids, so st.Vars()[v.ID()] addresses the counterpart
// of v in any clone of v's store — the lookup solution callbacks use to
// read assignments when search runs on cloned stores.
func (v *Var) ID() int { return v.id }

// Domain returns the current domain for read-only inspection.
func (v *Var) Domain() *Domain { return v.dom }

// Min returns the current lower bound.
func (v *Var) Min() int { return v.dom.Min() }

// Max returns the current upper bound.
func (v *Var) Max() int { return v.dom.Max() }

// Size returns the current domain size.
func (v *Var) Size() int { return v.dom.Size() }

// Assigned reports whether the variable is fixed to a single value.
func (v *Var) Assigned() bool { return v.dom.Size() == 1 }

// Value returns the assigned value; it panics if the variable is not
// assigned, which always indicates a solver bug.
func (v *Var) Value() int {
	val, ok := v.dom.Singleton()
	if !ok {
		panic(fmt.Sprintf("csp: Value() on unassigned %s%v", v.name, v.dom))
	}
	return val
}

// String renders "name{domain}".
func (v *Var) String() string { return v.name + v.dom.String() }

// Propagator is a constraint's filtering algorithm. Propagate prunes the
// domains of the variables it watches and returns ErrInconsistent when
// it detects unsatisfiability. Propagators must be idempotent at a
// fixpoint and must not retain references to domains across calls.
type Propagator interface {
	Propagate(st *Store) error
}

// Named is an optional Propagator extension: a stable human-readable
// name used to attribute propagation metrics and trace events. Unnamed
// propagators fall back to their Go type name.
type Named interface {
	Name() string
}

type trailEntry struct {
	v   *Var
	dom *Domain
	at  int
}

// Store owns variables and propagators and provides trailing (Push/Pop)
// and fixpoint propagation. It is the solver state threaded through
// search.
// propEntry is a registered propagator plus its always-on bookkeeping.
// Keeping runs inline (rather than in a parallel slice) means Post does
// exactly the same number of allocations as before instrumentation, and
// the per-execution cost is a single field increment. The name is
// resolved lazily and cached, so the uninstrumented path never touches
// it.
type propEntry struct {
	p    Propagator
	name string // lazily cached; see Store.propName
	runs int64
}

type Store struct {
	vars  []*Var
	props []propEntry

	queue   []int // propagator indices pending execution
	queued  []bool
	trail   []trailEntry
	marks   []int // trail lengths at Push points
	level   int
	failed  bool
	nPropag int64 // statistics: propagator executions

	// Observability. rec is nil on the uninstrumented path; running is
	// the index of the propagator currently executing, for prune
	// attribution (-1 outside propagation).
	rec       obs.Recorder
	running   int
	timing    bool
	propagDur time.Duration
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{running: -1} }

// SetRecorder installs rec as the event sink for propagate/prune events
// (nil disables recording). Search installs Options.Recorder here for
// the duration of a run.
func (st *Store) SetRecorder(rec obs.Recorder) { st.rec = rec }

// Recorder returns the currently installed event sink (nil when none).
func (st *Store) Recorder() obs.Recorder { return st.rec }

// EnableTiming makes Propagate accumulate wall-clock time spent in
// propagation, readable via PropagationTime. Off by default: timing
// costs two clock reads per fixpoint computation.
func (st *Store) EnableTiming(on bool) { st.timing = on }

// PropagationTime returns the accumulated propagation wall-clock time
// (zero unless EnableTiming was switched on).
func (st *Store) PropagationTime() time.Duration { return st.propagDur }

// NewVar creates a variable with the given initial domain. The domain is
// cloned: callers may reuse the argument. It panics on a nil or empty
// domain — a variable with no values is a modelling bug, not a search
// state.
func (st *Store) NewVar(name string, dom *Domain) *Var {
	if dom == nil || dom.Empty() {
		panic("csp: NewVar with nil or empty domain")
	}
	v := &Var{id: len(st.vars), name: name, dom: dom.Clone(), trailedAt: 0}
	st.vars = append(st.vars, v)
	return v
}

// NewVarRange creates a variable with domain {lo..hi}.
func (st *Store) NewVarRange(name string, lo, hi int) *Var {
	return st.NewVar(name, NewDomainRange(lo, hi))
}

// Vars returns all variables in creation order.
func (st *Store) Vars() []*Var { return st.vars }

// Post registers a propagator and schedules it for an initial run. The
// watched variables wake the propagator whenever their domain changes.
// The returned handle can be passed to Schedule to force a re-run when
// solver state outside the domains (such as a branch-and-bound bound)
// changes.
func (st *Store) Post(p Propagator, watched ...*Var) int {
	idx := len(st.props)
	st.props = append(st.props, propEntry{p: p})
	st.queued = append(st.queued, false)
	for _, v := range watched {
		v.watchers = append(v.watchers, idx)
	}
	st.enqueue(idx)
	return idx
}

// Schedule re-enqueues the propagator with the given handle.
func (st *Store) Schedule(handle int) { st.enqueue(handle) }

func (st *Store) enqueue(idx int) {
	if !st.queued[idx] {
		st.queued[idx] = true
		st.queue = append(st.queue, idx)
	}
}

// Stats returns the number of propagator executions so far.
func (st *Store) Stats() int64 { return st.nPropag }

// PropagatorStat is the aggregated execution count of all propagators
// sharing one name (e.g. every geost.non-overlap pair).
type PropagatorStat struct {
	Name string
	Runs int64
}

// propName names the propagator at idx, resolving and caching it on
// first use: the declared Named name when available, the Go type name
// otherwise.
func (st *Store) propName(idx int) string {
	e := &st.props[idx]
	if e.name == "" {
		if n, ok := e.p.(Named); ok {
			e.name = n.Name()
		} else {
			e.name = fmt.Sprintf("%T", e.p)
		}
	}
	return e.name
}

// PropagatorStats returns per-propagator execution counts aggregated by
// name, most-run first (ties broken alphabetically).
func (st *Store) PropagatorStats() []PropagatorStat {
	byName := map[string]int64{}
	for i := range st.props {
		byName[st.propName(i)] += st.props[i].runs
	}
	out := make([]PropagatorStat, 0, len(byName))
	//solverlint:allow nondeterminism aggregation order is irrelevant; the result is fully sorted below before returning
	for n, r := range byName {
		out = append(out, PropagatorStat{Name: n, Runs: r})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runs != out[j].Runs {
			return out[i].Runs > out[j].Runs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// namedProp decorates a propagator with an explicit metrics name.
type namedProp struct {
	Propagator
	name string
}

// Name implements Named.
func (p namedProp) Name() string { return p.name }

// CloneFor implements Clonable by cloning the wrapped propagator and
// re-attaching the name; it returns nil (not clonable) when the wrapped
// propagator is not Clonable.
func (p namedProp) CloneFor(ctx *CloneCtx) Propagator {
	c, ok := p.Propagator.(Clonable)
	if !ok {
		return nil
	}
	inner := c.CloneFor(ctx)
	if inner == nil {
		return nil
	}
	return namedProp{inner, p.name}
}

// WithName gives p an explicit name for metrics and trace attribution,
// overriding the Go type-name fallback.
func WithName(p Propagator, name string) Propagator { return namedProp{p, name} }

// runningName names the propagator currently executing ("" outside
// propagation — e.g. a prune caused by a search branching decision).
func (st *Store) runningName() string {
	if st.running < 0 {
		return ""
	}
	return st.propName(st.running)
}

// notePrune emits a prune event for v; before is v's domain size
// captured ahead of the mutation. Call only when st.rec != nil was
// already checked to keep the disabled path free of any work.
func (st *Store) notePrune(v *Var, before int) {
	//solverlint:allow obsgate the nil check is the caller's documented precondition (see doc comment); re-checking here would double the guard on every prune
	st.rec.Record(obs.Event{
		Kind:    obs.KindPrune,
		Var:     v.name,
		Removed: before - v.dom.Size(),
		Prop:    st.runningName(),
	})
}

// ensureOwned makes v's domain writable at the current level, trailing
// the previous domain for restoration on Pop.
func (st *Store) ensureOwned(v *Var) {
	if v.trailedAt == st.level {
		return
	}
	st.trail = append(st.trail, trailEntry{v: v, dom: v.dom, at: v.trailedAt})
	v.dom = v.dom.Clone()
	v.trailedAt = st.level
}

func (st *Store) changed(v *Var) error {
	for _, w := range v.watchers {
		st.enqueue(w)
	}
	if v.dom.Empty() {
		st.failed = true
		return ErrInconsistent
	}
	return nil
}

// Remove deletes val from v's domain.
func (st *Store) Remove(v *Var, val int) error {
	if !v.dom.Contains(val) {
		return nil
	}
	st.ensureOwned(v)
	if v.dom.Remove(val) {
		if st.rec != nil {
			st.notePrune(v, v.dom.Size()+1)
		}
		return st.changed(v)
	}
	return nil
}

// SetMin prunes v to values >= lo.
func (st *Store) SetMin(v *Var, lo int) error {
	if v.dom.Empty() || lo <= v.dom.Min() {
		return nil
	}
	before := 0
	if st.rec != nil {
		before = v.dom.Size()
	}
	st.ensureOwned(v)
	if v.dom.RemoveBelow(lo) {
		if st.rec != nil {
			st.notePrune(v, before)
		}
		return st.changed(v)
	}
	return nil
}

// SetMax prunes v to values <= hi.
func (st *Store) SetMax(v *Var, hi int) error {
	if v.dom.Empty() || hi >= v.dom.Max() {
		return nil
	}
	before := 0
	if st.rec != nil {
		before = v.dom.Size()
	}
	st.ensureOwned(v)
	if v.dom.RemoveAbove(hi) {
		if st.rec != nil {
			st.notePrune(v, before)
		}
		return st.changed(v)
	}
	return nil
}

// Assign fixes v to val; it fails if val is not in the domain.
func (st *Store) Assign(v *Var, val int) error {
	if !v.dom.Contains(val) {
		st.failed = true
		return ErrInconsistent
	}
	if v.dom.Size() == 1 {
		return nil
	}
	before := 0
	if st.rec != nil {
		before = v.dom.Size()
	}
	st.ensureOwned(v)
	if v.dom.KeepOnly(val) {
		if st.rec != nil {
			st.notePrune(v, before)
		}
		return st.changed(v)
	}
	return nil
}

// FilterDomain retains only the values of v for which keep returns true.
func (st *Store) FilterDomain(v *Var, keep func(int) bool) error {
	// Probe first so untouched domains stay shared across levels.
	any := false
	v.dom.ForEach(func(val int) bool {
		if !keep(val) {
			any = true
			return false
		}
		return true
	})
	if !any {
		return nil
	}
	before := 0
	if st.rec != nil {
		before = v.dom.Size()
	}
	st.ensureOwned(v)
	if v.dom.Filter(keep) {
		if st.rec != nil {
			st.notePrune(v, before)
		}
		return st.changed(v)
	}
	return nil
}

// Propagate runs the propagation queue to fixpoint. On failure the queue
// is drained and ErrInconsistent returned; the store remains usable
// after a Pop.
func (st *Store) Propagate() error {
	if !st.timing {
		return st.propagate()
	}
	//solverlint:allow nondeterminism opt-in EnableTiming measurement; the timing never influences propagation or search
	start := time.Now()
	err := st.propagate()
	//solverlint:allow nondeterminism opt-in EnableTiming measurement; the timing never influences propagation or search
	st.propagDur += time.Since(start)
	return err
}

func (st *Store) propagate() error {
	if st.failed {
		st.queue = st.queue[:0]
		for i := range st.queued {
			st.queued[i] = false
		}
		return ErrInconsistent
	}
	for len(st.queue) > 0 {
		idx := st.queue[0]
		st.queue = st.queue[1:]
		st.queued[idx] = false
		st.nPropag++
		st.props[idx].runs++
		if st.rec != nil {
			st.rec.Record(obs.Event{Kind: obs.KindPropagate, Prop: st.propName(idx)})
		}
		st.running = idx
		err := st.props[idx].p.Propagate(st)
		st.running = -1
		if err != nil {
			st.failed = true
			st.queue = st.queue[:0]
			for i := range st.queued {
				st.queued[i] = false
			}
			return err
		}
	}
	return nil
}

// Push opens a new trail level. Subsequent domain mutations are undone
// by the matching Pop.
func (st *Store) Push() {
	st.marks = append(st.marks, len(st.trail))
	st.level++
}

// Pop restores all domains to their state at the matching Push and
// clears any pending failure. It panics when no Push is open: an
// unbalanced Pop always indicates a search-loop bug.
func (st *Store) Pop() {
	if len(st.marks) == 0 {
		panic("csp: Pop without Push")
	}
	mark := st.marks[len(st.marks)-1]
	st.marks = st.marks[:len(st.marks)-1]
	for i := len(st.trail) - 1; i >= mark; i-- {
		e := st.trail[i]
		e.v.dom = e.dom
		e.v.trailedAt = e.at
	}
	st.trail = st.trail[:mark]
	st.level--
	st.failed = false
	st.queue = st.queue[:0]
	for i := range st.queued {
		st.queued[i] = false
	}
}

// ScheduleAll re-enqueues every propagator; used when search state
// outside the domains (e.g. a branch-and-bound bound) changes.
func (st *Store) ScheduleAll() {
	for i := range st.props {
		st.enqueue(i)
	}
}
