package fabric

import (
	"strings"
	"testing"

	"repro/internal/grid"
)

func stripeDevice() *Device {
	// 8 wide, 4 tall: column 3 is BRAM, column 6 is DSP, rest CLB.
	return NewDevice("stripe", 8, 4, func(x, y int) Kind {
		switch x {
		case 3:
			return BRAM
		case 6:
			return DSP
		}
		return CLB
	})
}

func TestDeviceBasics(t *testing.T) {
	d := stripeDevice()
	if d.W() != 8 || d.H() != 4 || d.Name() != "stripe" {
		t.Fatalf("basic accessors wrong: %dx%d %q", d.W(), d.H(), d.Name())
	}
	if d.KindAt(3, 2) != BRAM || d.KindAt(6, 0) != DSP || d.KindAt(0, 0) != CLB {
		t.Fatal("KindAt wrong")
	}
	if d.KindAt(-1, 0) != Static || d.KindAt(0, 4) != Static {
		t.Fatal("out-of-range KindAt must be Static")
	}
	h := d.Histogram()
	if h[BRAM] != 4 || h[DSP] != 4 || h[CLB] != 24 || h.Total() != 32 {
		t.Fatalf("histogram wrong: %v", h)
	}
}

func TestNewDevicePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero width":   func() { NewDevice("bad", 0, 4, func(x, y int) Kind { return CLB }) },
		"neg height":   func() { NewDevice("bad", 4, -1, func(x, y int) Kind { return CLB }) },
		"invalid kind": func() { NewDevice("bad", 2, 2, func(x, y int) Kind { return Kind(77) }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaskStatic(t *testing.T) {
	d := stripeDevice()
	d.MaskStatic(grid.RectXYWH(0, 0, 4, 2))
	if d.KindAt(0, 0) != Static || d.KindAt(3, 1) != Static {
		t.Fatal("MaskStatic did not mask")
	}
	if d.KindAt(0, 2) != CLB || d.KindAt(4, 0) != CLB {
		t.Fatal("MaskStatic masked outside the rect")
	}
	// Clipping: masking beyond the die is fine.
	d.MaskStatic(grid.RectXYWH(7, 3, 100, 100))
	if d.KindAt(7, 3) != Static {
		t.Fatal("clipped mask failed")
	}
}

func TestMaskStaticOutside(t *testing.T) {
	d := stripeDevice()
	keep := grid.RectXYWH(2, 1, 3, 2)
	d.MaskStaticOutside(keep)
	for y := 0; y < d.H(); y++ {
		for x := 0; x < d.W(); x++ {
			in := grid.Pt(x, y).In(keep)
			if in && d.KindAt(x, y) == Static {
				t.Fatalf("tile (%d,%d) inside keep rect was masked", x, y)
			}
			if !in && d.KindAt(x, y) != Static {
				t.Fatalf("tile (%d,%d) outside keep rect not masked", x, y)
			}
		}
	}
}

func TestDeviceCloneIndependent(t *testing.T) {
	d := stripeDevice()
	c := d.Clone()
	d.MaskStatic(d.Bounds())
	if c.KindAt(0, 0) != CLB {
		t.Fatal("clone shares storage with original")
	}
}

func TestRegionLocalCoordinates(t *testing.T) {
	d := stripeDevice()
	r := d.Region(grid.RectXYWH(2, 1, 4, 3))
	if r.W() != 4 || r.H() != 3 {
		t.Fatalf("region size %dx%d, want 4x3", r.W(), r.H())
	}
	// Region-local (1, 0) is device (3, 1): the BRAM column.
	if r.KindAt(1, 0) != BRAM {
		t.Fatalf("region KindAt(1,0) = %v, want BRAM", r.KindAt(1, 0))
	}
	if r.KindAt(-1, 0) != Static || r.KindAt(4, 0) != Static {
		t.Fatal("region out-of-range not Static")
	}
	if r.Device() != d {
		t.Fatal("Device accessor broken")
	}
	if r.DeviceBounds() != grid.RectXYWH(2, 1, 4, 3) {
		t.Fatalf("DeviceBounds = %v", r.DeviceBounds())
	}
}

func TestRegionClipsToDevice(t *testing.T) {
	d := stripeDevice()
	r := d.Region(grid.RectXYWH(6, 2, 10, 10))
	if r.W() != 2 || r.H() != 2 {
		t.Fatalf("clipped region %dx%d, want 2x2", r.W(), r.H())
	}
}

func TestRegionPlaceableCounts(t *testing.T) {
	d := stripeDevice()
	d.MaskStatic(grid.RectXYWH(0, 3, 8, 1)) // top row static
	r := d.FullRegion()
	if got := r.PlaceableCount(); got != 24 {
		t.Fatalf("PlaceableCount = %d, want 24", got)
	}
	if got := r.PlaceableInRows(1); got != 8 {
		t.Fatalf("PlaceableInRows(1) = %d, want 8", got)
	}
	if got := r.PlaceableInRows(100); got != 24 {
		t.Fatalf("PlaceableInRows(100) = %d, want 24 (clipped)", got)
	}
	if got := r.PlaceableInRows(0); got != 0 {
		t.Fatalf("PlaceableInRows(0) = %d, want 0", got)
	}
}

func TestRegionBitmaps(t *testing.T) {
	d := stripeDevice()
	r := d.FullRegion()
	bb := r.KindBitmap(BRAM)
	if bb.Count() != 4 || !bb.Get(3, 0) || !bb.Get(3, 3) {
		t.Fatalf("BRAM bitmap wrong: count=%d", bb.Count())
	}
	pb := r.PlaceableBitmap()
	if pb.Count() != 32 {
		t.Fatalf("placeable bitmap count = %d, want 32", pb.Count())
	}
}

func TestDeviceString(t *testing.T) {
	d := NewDevice("tiny", 3, 2, func(x, y int) Kind {
		if x == 1 {
			return BRAM
		}
		return CLB
	})
	want := "cbc\ncbc"
	if got := d.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := d.FullRegion().String(); got != want {
		t.Fatalf("region String = %q, want %q", got, want)
	}
	if !strings.Contains(d.FullRegion().Histogram().String(), "BRAM:2") {
		t.Fatal("histogram String missing BRAM count")
	}
}
