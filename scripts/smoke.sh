#!/bin/sh
# smoke.sh — end-to-end smoke test of the placement daemon, as run by
# the CI "smoke" job (and `make smoke` locally): build cmd/placed,
# start it on the Table-I fabric's catalog, place the committed smoke
# request twice and require a cache miss then a byte-identical cache
# hit, check liveness and the observability round trip (X-Trace-Id
# header, structured access-log line, span stream rendered by
# tracecat), run a stateful session round trip (create, place, release,
# defrag with priced moves, occupancy stats, delete), and shut down
# cleanly.
set -eu

PORT="${PORT:-18723}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
WORKDIR="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/placed" ./cmd/placed
go build -o "$WORKDIR/tracecat" ./cmd/tracecat

"$WORKDIR/placed" -addr "$ADDR" -workers 2 -cache-entries 64 -max-inflight 16 \
    -trace "$WORKDIR/spans.jsonl" -access-log "$WORKDIR/access.log" &
DAEMON_PID=$!

# Wait for liveness.
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke: daemon never became healthy on $BASE" >&2
        exit 1
    fi
    sleep 0.1
done
echo "smoke: daemon healthy on $BASE"

place() {
    curl -sf -D "$WORKDIR/$1.headers" -o "$WORKDIR/$1.body" \
        -H 'Content-Type: application/json' \
        --data-binary @cmd/placed/testdata/smoke-request.json \
        "$BASE/v1/place"
    grep -i '^x-cache:' "$WORKDIR/$1.headers" | tr -d '\r' | awk '{print $2}'
}

CACHE1="$(place first)"
if [ "$CACHE1" != "miss" ]; then
    echo "smoke: first placement X-Cache=$CACHE1, want miss" >&2
    exit 1
fi
CACHE2="$(place second)"
if [ "$CACHE2" != "hit" ]; then
    echo "smoke: second placement X-Cache=$CACHE2, want hit" >&2
    exit 1
fi
if ! cmp -s "$WORKDIR/first.body" "$WORKDIR/second.body"; then
    echo "smoke: cache hit is not byte-identical to the original response" >&2
    exit 1
fi
echo "smoke: miss then byte-identical hit"

# Every response must carry a 32-hex X-Trace-Id.
TRACE_ID="$(grep -i '^x-trace-id:' "$WORKDIR/first.headers" | tr -d '\r' | awk '{print $2}')"
if ! echo "$TRACE_ID" | grep -Eq '^[0-9a-f]{32}$'; then
    echo "smoke: first placement X-Trace-Id=\"$TRACE_ID\", want 32-hex" >&2
    exit 1
fi
echo "smoke: X-Trace-Id $TRACE_ID"

# The traced request shows up in the in-memory trace rings.
if ! curl -sf "$BASE/debug/traces" | grep -q "$TRACE_ID"; then
    echo "smoke: /debug/traces does not contain trace $TRACE_ID" >&2
    exit 1
fi
echo "smoke: /debug/traces lists the request"

STATS="$(curl -sf "$BASE/v1/stats")"
echo "$STATS"
case "$STATS" in
*'"slo"'*) ;;
*)
    echo "smoke: /v1/stats carries no SLO section" >&2
    exit 1
    ;;
esac

# --- Stateful session round trip -------------------------------------

# clb_module NAME W H prints a single-shape all-CLB module spec.
clb_module() {
    _tiles=""
    _y=0
    while [ "$_y" -lt "$3" ]; do
        _x=0
        while [ "$_x" -lt "$2" ]; do
            _tiles="${_tiles}{\"x\":$_x,\"y\":$_y,\"kind\":\"CLB\"},"
            _x=$((_x + 1))
        done
        _y=$((_y + 1))
    done
    printf '{"name":"%s","shapes":[{"tiles":[%s]}]}' "$1" "${_tiles%,}"
}

SESSION="$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"fabric":"spartan-like-24x16","region":{"x":0,"y":0,"w":8,"h":12},"replan":{"stallNodes":200}}' \
    "$BASE/v1/sessions" | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')"
if ! echo "$SESSION" | grep -Eq '^[0-9a-f]{32}$'; then
    echo "smoke: session create returned id \"$SESSION\", want 32-hex" >&2
    exit 1
fi
echo "smoke: session $SESSION created"

# session_place TASK W H places one module and requires placed:true
# plus an X-Trace-Id on the response.
session_place() {
    curl -sf -D "$WORKDIR/sess.headers" \
        -H 'Content-Type: application/json' \
        -d "{\"task\":$1,\"module\":$(clb_module "m$1" "$2" "$3")}" \
        "$BASE/v1/sessions/$SESSION/place" >"$WORKDIR/sess.body"
    if ! grep -q '"placed":true' "$WORKDIR/sess.body"; then
        echo "smoke: session place of task $1 failed: $(cat "$WORKDIR/sess.body")" >&2
        exit 1
    fi
    if ! grep -iq '^x-trace-id:' "$WORKDIR/sess.headers"; then
        echo "smoke: session place response lacks X-Trace-Id" >&2
        exit 1
    fi
}

session_place 1 8 4
session_place 2 4 4
session_place 3 4 4
session_place 4 4 4
echo "smoke: four modules resident"

RELEASE="$(curl -sf -X DELETE "$BASE/v1/sessions/$SESSION/modules/2")"
case "$RELEASE" in
*'"released":true'*) ;;
*)
    echo "smoke: release of task 2 failed: $RELEASE" >&2
    exit 1
    ;;
esac

DEFRAG="$(curl -sf -X POST "$BASE/v1/sessions/$SESSION/defrag")"
case "$DEFRAG" in
*'"moves":[{'*'"frames":'*) ;;
*)
    echo "smoke: defrag returned no priced moves: $DEFRAG" >&2
    exit 1
    ;;
esac
echo "smoke: defrag compacted the session"

SESS_STATS="$(curl -sf "$BASE/v1/sessions/$SESSION/stats")"
case "$SESS_STATS" in
*'"residents":3'*'"occupiedTiles":64'*) ;;
*)
    echo "smoke: session stats disagree with expected occupancy: $SESS_STATS" >&2
    exit 1
    ;;
esac
echo "smoke: session occupancy verified"

curl -sf -X DELETE "$BASE/v1/sessions/$SESSION" >/dev/null
if curl -sf "$BASE/v1/sessions/$SESSION/stats" >/dev/null 2>&1; then
    echo "smoke: deleted session still answers stats" >&2
    exit 1
fi
echo "smoke: session deleted"

kill "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "smoke: daemon exited non-zero on SIGTERM" >&2
    exit 1
}
DAEMON_PID=""
echo "smoke: clean shutdown"

# One well-formed access-log line per request, correlated by trace id:
# 2 /v1/place requests plus the 10-request session round trip.
LINES="$(wc -l < "$WORKDIR/access.log")"
if [ "$LINES" -ne 12 ]; then
    echo "smoke: access log has $LINES lines after 12 requests" >&2
    cat "$WORKDIR/access.log" >&2
    exit 1
fi
FIRST_LINE="$(head -n 1 "$WORKDIR/access.log")"
case "$FIRST_LINE" in
*"\"traceId\":\"$TRACE_ID\""*) ;;
*)
    echo "smoke: access log line lacks traceId $TRACE_ID: $FIRST_LINE" >&2
    exit 1
    ;;
esac
case "$FIRST_LINE" in
*'"path":"/v1/place"'*'"status":200'*) ;;
*)
    echo "smoke: malformed access log line: $FIRST_LINE" >&2
    exit 1
    ;;
esac
echo "smoke: access log well-formed"

# The span stream renders: tracecat must find the request trace with
# its solve span.
if ! "$WORKDIR/tracecat" "$WORKDIR/spans.jsonl" | grep -q "trace $TRACE_ID"; then
    echo "smoke: tracecat did not render trace $TRACE_ID" >&2
    "$WORKDIR/tracecat" "$WORKDIR/spans.jsonl" >&2 || true
    exit 1
fi
echo "smoke: tracecat renders the span stream"
