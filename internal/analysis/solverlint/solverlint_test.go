package solverlint

import "testing"

func TestCloneComplete(t *testing.T)  { RunFixture(t, CloneComplete, "clonecomplete") }
func TestNondeterminism(t *testing.T) { RunFixture(t, Nondeterminism, "nondeterminism") }
func TestObsGate(t *testing.T)        { RunFixture(t, ObsGate, "obsgate") }
func TestOptValidate(t *testing.T)    { RunFixture(t, OptValidate, "optvalidate") }
func TestNakedPanic(t *testing.T)     { RunFixture(t, NakedPanic, "nakedpanic") }

// TestAnalyzersRegistered pins the suite composition: the driver and
// the docs both enumerate these five names.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"clonecomplete", "nondeterminism", "obsgate", "optvalidate", "nakedpanic"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

// TestAllowCommentRequiresReason checks that a bare //solverlint:allow
// without a justification does not suppress anything.
func TestAllowCommentRequiresReason(t *testing.T) {
	pkg := loadTestPkg(t, map[string]string{"p.go": `
// Package p is a throwaway.
package p

func f() {
	panic("no reason given") //solverlint:allow nakedpanic
}
`})
	diags, err := RunAnalyzer(NakedPanic, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("reason-less allow comment suppressed the diagnostic: got %v", diags)
	}
}

// loadTestPkg writes files into a throwaway module and loads it.
func loadTestPkg(t *testing.T, files map[string]string) *Package {
	t.Helper()
	pkgs := loadTestPkgs(t, files)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}
