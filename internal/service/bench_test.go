package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchRequest is the paper's flagship instance: the seed-1 batch of
// 30 generated modules with four design alternatives on the Table-I
// fabric, solved with the benchmark suite's stall criterion. The hit
// path still pays for JSON decode, module generation and
// canonicalization; only the multi-second solve is amortised.
const benchRequest = `{
  "fabric": "virtex4-like-72x60",
  "generate": {"seed": 1},
  "options": {"stallNodes": 800, "timeoutMs": 30000}
}`

func benchServer(b *testing.B) (*Server, http.Handler) {
	b.Helper()
	s := New(Config{Workers: 1, MaxInFlight: 4})
	b.Cleanup(s.Close)
	return s, s.Handler()
}

func benchPlace(b *testing.B, h http.Handler, wantCache string) {
	b.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/place", bytes.NewReader([]byte(benchRequest)))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("place: status %d body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != wantCache {
		b.Fatalf("X-Cache = %q, want %q", got, wantCache)
	}
}

// BenchmarkServiceCacheHit measures the full request path when the
// canonical instance is already cached: JSON decode, canonicalization,
// digest, LRU lookup, cached body write. Compare against
// BenchmarkServiceColdSolve for the cache's speedup (EXPERIMENTS.md
// pins the ratio; the acceptance bar is ≥100×).
func BenchmarkServiceCacheHit(b *testing.B) {
	_, h := benchServer(b)
	benchPlace(b, h, "miss") // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPlace(b, h, "hit")
	}
}

// BenchmarkServiceColdSolve measures the same request with the cache
// emptied before each iteration: every request runs a real solve.
func BenchmarkServiceColdSolve(b *testing.B) {
	s, h := benchServer(b)
	for i := 0; i < b.N; i++ {
		s.cache.Reset()
		benchPlace(b, h, "miss")
	}
}
