package recobus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/module"
)

// WritePlacement emits a placement result in the flow's interchange
// format, one line per module:
//
//	place <module> <shape-index> <x> <y>
//
// The format lets downstream tools (bitstream assembly, verification,
// visualisation) consume placements without re-running the solver.
func WritePlacement(w io.Writer, res *core.Result) error {
	if !res.Found {
		return fmt.Errorf("recobus: cannot write an unplaced result")
	}
	var sb strings.Builder
	for _, p := range res.Placements {
		fmt.Fprintf(&sb, "place %s %d %d %d\n", p.Module.Name(), p.ShapeIndex, p.At.X, p.At.Y)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ParsePlacement reads the interchange format back, resolving module
// names against mods, recomputing the result's metrics on region, and
// validating the placement (M_a, M_b, M_c). Every module must be placed
// exactly once.
func ParsePlacement(r io.Reader, region *fabric.Region, mods []*module.Module) (*core.Result, error) {
	byName := make(map[string]*module.Module, len(mods))
	for _, m := range mods {
		byName[m.Name()] = m
	}
	placed := map[string]bool{}
	res := &core.Result{Found: true}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields, _ := specFields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "place" || len(fields) != 5 {
			return nil, fmt.Errorf("recobus: placement line %d: want 'place <module> <shape> <x> <y>'", lineNo)
		}
		m, ok := byName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("recobus: placement line %d: unknown module %q", lineNo, fields[1])
		}
		if placed[fields[1]] {
			return nil, fmt.Errorf("recobus: placement line %d: module %q placed twice", lineNo, fields[1])
		}
		si, err1 := strconv.Atoi(fields[2])
		x, err2 := strconv.Atoi(fields[3])
		y, err3 := strconv.Atoi(fields[4])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("recobus: placement line %d: bad integers", lineNo)
		}
		if si < 0 || si >= m.NumShapes() {
			return nil, fmt.Errorf("recobus: placement line %d: module %q has no shape %d", lineNo, fields[1], si)
		}
		placed[fields[1]] = true
		p := core.Placement{Module: m, ShapeIndex: si, At: grid.Pt(x, y)}
		res.Placements = append(res.Placements, p)
		if top := p.Top(); top > res.Height {
			res.Height = top
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(placed) != len(mods) {
		return nil, fmt.Errorf("recobus: placement covers %d of %d modules", len(placed), len(mods))
	}
	res.Utilization = metrics.Utilization(region, res.Occupancy(region))
	if err := res.Validate(region); err != nil {
		return nil, err
	}
	return res, nil
}
