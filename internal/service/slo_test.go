package service

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// fakeClock drives the sloTracker's time for deterministic window
// tests.
type fakeClock struct{ sec int64 }

func (c *fakeClock) now() time.Time { return time.Unix(c.sec, 0) }

func TestSLOTrackerWindows(t *testing.T) {
	clk := &fakeClock{sec: 1_000_000}
	tr := newSLOTracker(100 * time.Millisecond)
	tr.now = clk.now

	// Second 0: two good fast, one good slow, one failed.
	tr.Observe(10*time.Millisecond, 200)
	tr.Observe(20*time.Millisecond, 200)
	tr.Observe(900*time.Millisecond, 200)
	tr.Observe(5*time.Millisecond, 500)

	w := tr.Window(time.Minute)
	if w.Requests != 4 || w.Available != 3 || w.WithinLatency != 2 {
		t.Fatalf("1m window: %+v", w)
	}
	if w.Availability != 0.75 || w.LatencyAttainment != 0.5 {
		t.Fatalf("1m ratios: %+v", w)
	}

	// 90 seconds later the 1m window has rolled past those requests but
	// the 5m window still sees them.
	clk.sec += 90
	if w := tr.Window(time.Minute); w.Requests != 0 || w.Availability != 1 || w.LatencyAttainment != 1 {
		t.Fatalf("rolled 1m window not vacuously attained: %+v", w)
	}
	if w := tr.Window(5 * time.Minute); w.Requests != 4 {
		t.Fatalf("5m window lost history: %+v", w)
	}

	// A wrapped ring slot (same index, different absolute second) must
	// not resurrect stale counts.
	clk.sec += sloBucketSeconds
	if w := tr.Window(time.Hour); w.Requests != 0 {
		t.Fatalf("hour window read stale wrapped buckets: %+v", w)
	}

	// 4xx is available (the service answered) but never "fast".
	tr.Observe(1*time.Millisecond, 429)
	if w := tr.Window(time.Minute); w.Available != 1 || w.WithinLatency != 1 {
		t.Fatalf("4xx accounting: %+v", w)
	}

	// Nil tracker is inert and vacuously attained.
	var nilT *sloTracker
	nilT.Observe(time.Second, 200)
	if w := nilT.Window(time.Minute); w.Availability != 1 {
		t.Fatalf("nil tracker window: %+v", w)
	}
}

func TestSLOStatsShape(t *testing.T) {
	clk := &fakeClock{sec: 2_000_000}
	tr := newSLOTracker(250 * time.Millisecond)
	tr.now = clk.now
	tr.Observe(10*time.Millisecond, 200)

	st := tr.Stats(5 * time.Minute)
	if st.LatencyObjectiveMs != 250 || st.Window != "5m0s" {
		t.Fatalf("stats header: %+v", st)
	}
	if st.Attainment.Requests != 1 {
		t.Fatalf("headline attainment: %+v", st.Attainment)
	}
	for _, label := range []string{"1m", "5m", "1h"} {
		if _, ok := st.Windows[label]; !ok {
			t.Fatalf("window %q missing: %+v", label, st.Windows)
		}
	}
}

// TestStatsSLOEndToEnd injects a slow request (latency objective of
// 1µs — any real request misses it) and reads the attainment back
// through GET /v1/stats.
func TestStatsSLOEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{SLOLatency: time.Microsecond, SLOWindow: time.Minute})
	h := s.Handler()

	if rr := post(t, h, genBody(1, 2)); rr.Code != http.StatusOK {
		t.Fatalf("place: status %d body %s", rr.Code, rr.Body)
	}
	// A malformed request is still "available" (a 4xx answer) but the
	// failed-solve path must show up in the availability accounting, so
	// inject a 5xx directly.
	s.slo.Observe(time.Millisecond, 500)

	rr := get(t, h, "/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	slo := st.SLO
	if slo.LatencyObjectiveMs <= 0 || slo.Window != "1m0s" {
		t.Fatalf("SLO header: %+v", slo)
	}
	a := slo.Attainment
	if a.Requests != 2 || a.Available != 1 {
		t.Fatalf("attainment after good+failed: %+v", a)
	}
	if a.Availability != 0.5 {
		t.Fatalf("availability = %v, want 0.5", a.Availability)
	}
	if a.WithinLatency != 0 || a.LatencyAttainment != 0 {
		t.Fatalf("1ns objective attained: %+v", a)
	}
}
