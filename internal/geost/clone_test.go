package geost

import (
	"testing"

	"repro/internal/csp"
)

// buildCloneKernel models a small placement problem touching every
// geost propagator: top links, pairwise non-overlap, compulsory-part
// pruning and the capacity height bound.
func buildCloneKernel(t *testing.T) (*csp.Store, *Kernel, *csp.Var) {
	t.Helper()
	st := csp.NewStore()
	k := New(st, 4, 4)
	shapes := [][]ShapeGeom{
		{rectGeom(2, 2, 4, 4), rectGeom(1, 4, 4, 4)},
		{rectGeom(2, 1, 4, 4)},
		{rectGeom(1, 2, 4, 4), rectGeom(2, 1, 4, 4)},
	}
	for i, s := range shapes {
		if _, err := k.AddObject(string(rune('a'+i)), s); err != nil {
			t.Fatal(err)
		}
	}
	k.PostNonOverlap()
	k.PostCompulsoryNonOverlap()
	height := k.PostHeightObjective(uniformCapPrefix(4, 4))
	if err := st.Propagate(); err != nil {
		t.Fatalf("root propagation: %v", err)
	}
	return st, k, height
}

// TestKernelCloneIndependence checks a cloned geost store shares no
// mutable state with its source: divergent propagation on one leaves
// the other's domains bit-for-bit unchanged, and both solve to the
// same optimum.
func TestKernelCloneIndependence(t *testing.T) {
	st, k, height := buildCloneKernel(t)
	cl, err := st.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}

	snapshot := func(s *csp.Store) [][]int {
		out := make([][]int, len(s.Vars()))
		for i, v := range s.Vars() {
			out[i] = v.Domain().Values()
		}
		return out
	}
	equal := func(a, b [][]int) bool {
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}

	if !equal(snapshot(st), snapshot(cl)) {
		t.Fatal("clone differs from source immediately after Clone")
	}

	// Assign an object on the clone; the source must not move. This
	// drives nonOverlapPair through the clone's scratch bitmap, which
	// must be the clone's own.
	before := snapshot(st)
	place := k.Objects()[0].Place
	clPlace := cl.Vars()[place.ID()]
	cl.Push()
	if err := cl.Assign(clPlace, clPlace.Min()); err != nil {
		t.Fatalf("assign on clone: %v", err)
	}
	if err := cl.Propagate(); err != nil {
		t.Fatalf("propagate on clone: %v", err)
	}
	if !equal(before, snapshot(st)) {
		t.Fatal("propagation on the clone mutated the source store")
	}
	cl.Pop()

	// Both minimise to the same height.
	solve := func(s *csp.Store) (bool, int) {
		vars := make([]*csp.Var, len(k.Objects()))
		for i, o := range k.Objects() {
			vars[i] = s.Vars()[o.Place.ID()]
		}
		obj := s.Vars()[height.ID()]
		res, err := csp.Minimize(s, vars, obj, csp.Options{}, nil)
		if err != nil {
			t.Fatalf("Minimize: %v", err)
		}
		return res.Found, res.Best
	}
	f1, b1 := solve(st)
	f2, b2 := solve(cl)
	if f1 != f2 || b1 != b2 {
		t.Fatalf("source solved to (%v, %d), clone to (%v, %d)", f1, b1, f2, b2)
	}
}

// TestKernelParallelMinimize runs the full geost model through
// MinimizeParallel and checks the result matches sequential Minimize.
func TestKernelParallelMinimize(t *testing.T) {
	st, k, height := buildCloneKernel(t)
	vars := k.PlaceVars()
	seq, err := csp.Minimize(st, vars, height, csp.Options{}, nil)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	for _, workers := range []int{1, 2, 4} {
		pst, pk, pheight := buildCloneKernel(t)
		par, err := csp.MinimizeParallel(pst, pk.PlaceVars(), pheight, csp.Options{Workers: workers}, nil)
		if err != nil {
			t.Fatalf("workers %d: MinimizeParallel: %v", workers, err)
		}
		if par.Found != seq.Found || par.Best != seq.Best || !par.Optimal {
			t.Fatalf("workers %d: (found %v best %d optimal %v), sequential (found %v best %d)",
				workers, par.Found, par.Best, par.Optimal, seq.Found, seq.Best)
		}
	}
}
