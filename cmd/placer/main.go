// Command placer runs the design flow of Figure 2 from the shell: it
// reads a partial-region description and a module specification
// (ReCoBus-style text formats, see internal/recobus), computes an
// optimised placement, prints the floorplan, and optionally assembles
// bitstreams or writes an SVG rendering.
//
// Example:
//
//	placer -region region.spec -modules modules.spec -svg floorplan.svg
//
// Observability: -trace writes the solver's JSONL event stream,
// -metrics dumps phase timings and per-propagator counters (summary
// table on "-", Prometheus text format on a file path), and
// -cpuprofile/-memprofile/-pprof-addr expose the standard Go profiling
// hooks:
//
//	placer -region region.spec -modules modules.spec -trace trace.jsonl -metrics -
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/recobus"
	"repro/internal/render"
)

// cliOpts carries the parsed command line into run.
type cliOpts struct {
	regionPath  string
	modulesPath string
	timeout     time.Duration
	stall       int64
	workers     int
	first       bool
	strategy    string
	presolve    string
	svgPath     string
	pngPath     string
	outPath     string
	bitstreams  bool
	obs         obs.Config
}

func main() {
	var o cliOpts
	flag.StringVar(&o.regionPath, "region", "", "partial-region description file (required)")
	flag.StringVar(&o.modulesPath, "modules", "", "module specification file (required)")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Second, "optimisation budget")
	flag.Int64Var(&o.stall, "stall", 2000, "stop after this many nodes without improvement")
	flag.IntVar(&o.workers, "workers", 1, "parallel search goroutines (>1 enables parallel branch-and-bound)")
	flag.BoolVar(&o.first, "first", false, "stop at the first feasible placement")
	flag.StringVar(&o.strategy, "strategy", "first-fail", "branching: first-fail, largest-first, input-order")
	flag.StringVar(&o.presolve, "presolve", "on", "presolve pipeline: on, off (escape hatch for debugging and A/B runs)")
	flag.StringVar(&o.svgPath, "svg", "", "write an SVG floorplan to this file")
	flag.StringVar(&o.pngPath, "png", "", "write a PNG floorplan to this file")
	flag.StringVar(&o.outPath, "out", "", "write the placement file (for checkplacement / external tools)")
	flag.BoolVar(&o.bitstreams, "bitstreams", false, "assemble and summarise bitstreams")
	addObsFlags(&o.obs)
	flag.Parse()
	if o.regionPath == "" || o.modulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
}

// addObsFlags registers the shared observability flag set.
func addObsFlags(cfg *obs.Config) {
	flag.StringVar(&cfg.TracePath, "trace", "", "write the solver JSONL event trace to this file (- for stdout)")
	flag.StringVar(&cfg.MetricsPath, "metrics", "", "dump metrics at exit: - for a summary table, a path for Prometheus text format")
	flag.StringVar(&cfg.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&cfg.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

func run(o cliOpts) (err error) {
	regionFile, err := os.Open(o.regionPath)
	if err != nil {
		return err
	}
	defer regionFile.Close()
	modulesFile, err := os.Open(o.modulesPath)
	if err != nil {
		return err
	}
	defer modulesFile.Close()

	flow, err := recobus.LoadFlow(regionFile, modulesFile)
	if err != nil {
		return err
	}
	strat, err := core.ParseStrategy(o.strategy)
	if err != nil {
		return err
	}
	presolve, err := core.ParsePresolve(o.presolve)
	if err != nil {
		return err
	}
	session, err := obs.Start(o.obs)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := session.Close(); err == nil {
			err = cerr
		}
	}()

	res, err := flow.Place(core.Options{
		Timeout:           o.timeout,
		StallNodes:        o.stall,
		Workers:           o.workers,
		FirstSolutionOnly: o.first,
		Strategy:          strat,
		Presolve:          presolve,
		Recorder:          session.Recorder,
		Metrics:           session.Registry,
	})
	if err != nil {
		return err
	}
	if !res.Found {
		return fmt.Errorf("no feasible placement for this module set (search %s)", res.Reason)
	}

	fmt.Println(res)
	fmt.Printf("search: reason=%s backtracks=%d propagations=%d\n",
		res.Reason, res.Backtracks, res.Propagations)
	if len(res.ObjectiveTrace) > 0 {
		fmt.Print("objective trace:")
		for _, p := range res.ObjectiveTrace {
			fmt.Printf(" %d@%v", p.Objective, p.Elapsed.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println(render.PlacementsWithRuler(flow.Region, res.Placements))

	if o.bitstreams {
		bs, err := flow.Assemble(res)
		if err != nil {
			return err
		}
		fmt.Println("bitstreams:")
		for _, b := range bs {
			fmt.Println(" ", b)
		}
		fmt.Println("total reconfiguration time:", recobus.TotalReconfigTime(bs))
	}

	if o.svgPath != "" {
		f, err := os.Create(o.svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.SVG(f, flow.Region, res.Placements, 10); err != nil {
			return err
		}
		fmt.Println("wrote", o.svgPath)
	}
	if o.pngPath != "" {
		f, err := os.Create(o.pngPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.PNG(f, flow.Region, res.Placements, 10); err != nil {
			return err
		}
		fmt.Println("wrote", o.pngPath)
	}
	if o.outPath != "" {
		f, err := os.Create(o.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := recobus.WritePlacement(f, res); err != nil {
			return err
		}
		fmt.Println("wrote", o.outPath)
	}
	return nil
}
