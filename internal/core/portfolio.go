package core

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/module"
)

// Portfolio runs several placer configurations concurrently on the same
// instance and returns the best result: the lowest occupied height, ties
// broken by higher utilization and then by configuration order (so the
// outcome is deterministic for deterministic configurations — use
// StallNodes rather than Timeout when reproducibility matters).
//
// Portfolio search exploits the complementary strengths of branching
// heuristics: first-fail converges fast on tightly constrained
// instances, largest-first on area-dominated ones. Each worker gets its
// own constraint store, so workers share nothing but the inputs.
func Portfolio(region *fabric.Region, mods []*module.Module, configs []Options) (*Result, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("core: empty portfolio")
	}
	results := make([]*Result, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i, cfg := range configs {
		wg.Add(1)
		go func(i int, cfg Options) {
			defer wg.Done()
			results[i], errs[i] = New(region, cfg).Place(mods)
		}(i, cfg)
	}
	wg.Wait()

	var best *Result
	for i, res := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: portfolio config %d: %w", i, errs[i])
		}
		if !res.Found {
			continue
		}
		if best == nil || res.Height < best.Height ||
			(res.Height == best.Height && res.Utilization > best.Utilization) {
			best = res
		}
	}
	if best == nil {
		// All workers agree the instance is infeasible (or budgets
		// expired without a solution); return the first result so the
		// caller sees node counts.
		return results[0], nil
	}
	return best, nil
}

// DefaultPortfolio returns a spread of placer configurations sharing the
// given base options: the three branching strategies with bottom-left
// ordering, plus first-fail with strong propagation.
func DefaultPortfolio(base Options) []Options {
	ff := base
	ff.Strategy = StrategyFirstFail
	lf := base
	lf.Strategy = StrategyLargestFirst
	io := base
	io.Strategy = StrategyInputOrder
	sp := base
	sp.Strategy = StrategyFirstFail
	sp.StrongPropagation = true
	return []Options{ff, lf, io, sp}
}
