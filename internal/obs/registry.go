package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
// All methods are no-ops on a nil Counter (as handed out by a nil
// Registry), so instrumentation sites need no guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (d must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64, safe for concurrent use and no-op on a
// nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a get-or-create store of named metrics. Metric names may
// carry Prometheus-style labels inline ("runs_total{prop=\"x\"}"); the
// exposition writers treat the text up to '{' as the metric family.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Nil-receiver safe: returns nil, and Counter methods on nil are
// no-ops, so call sites need no registry guard.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Nil-receiver safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket bounds on first use (DefDurationBounds when none are
// given). Bounds of an existing histogram are not changed. Nil-receiver
// safe.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefDurationBounds
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timer measures one span and records it, in seconds, into a histogram
// named "<name>_seconds". A nil Timer (from a nil Registry) is a no-op,
// so instrumentation sites need no guards:
//
//	defer reg.Timer("phase_model_build").Stop()
type Timer struct {
	h     *Histogram
	start time.Time
}

// Timer starts a span against histogram "<name>_seconds". Nil-receiver
// safe.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	//solverlint:allow nondeterminism timers measure wall-clock latency for telemetry; no search decision reads them
	return &Timer{h: r.Histogram(name + "_seconds"), start: time.Now()}
}

// Stop ends the span, records it and returns its duration. Safe on a
// nil Timer (returns 0).
func (t *Timer) Stop() time.Duration {
	if t == nil {
		return 0
	}
	//solverlint:allow nondeterminism timers measure wall-clock latency for telemetry; no search decision reads them
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// ObserveDuration records d in seconds into histogram "<name>_seconds".
// Nil-receiver safe.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Histogram(name + "_seconds").Observe(d.Seconds())
}
