#!/bin/sh
# benchgate.sh — the solver benchmark-regression gate, as run by the CI
# "benchgate" job (and `make benchgate` locally). Re-solves the pinned
# scenario set (Table-I with the presolve pipeline off and on, Table-I
# without alternatives, Fig. 3, Fig. 5) and fails if search nodes,
# backtracks, the reached height/optimality, or — with a deliberately
# loose bound, since wall time is machine-dependent — ns per solve
# regress against the committed baseline in BENCH_solver.json.
#
# After an *intended* change to solver effort, re-baseline with:
#
#	go test -run TestBenchGate -benchgate-update .
#
# and commit the new BENCH_solver.json alongside the change.
set -eu

cd "$(dirname "$0")/.."
exec go test -run TestBenchGate -benchgate -timeout 20m -v .
