// Package faultinject is the deterministic fault-injection layer
// behind the serving stack's chaos testing: a seeded rule engine that
// decides, per instrumented site, whether a request experiences an
// injected error, an added latency, a missed deadline, or a partial
// result. The decision stream is driven by one seeded PRNG, so a given
// (seed, rule set, call sequence) replays identically — which is what
// lets the chaos harness (cmd/loadgen) and the failure-path tests
// assert exact behaviour instead of sampling flakiness.
//
// The package follows the internal/obs zero-cost-when-disabled
// contract: every method is nil-safe, and Check on a nil *Injector
// returns the zero Decision without locking, allocating, or reading
// the clock. Serving code therefore calls Check unconditionally; a
// daemon without -faults pays one nil check per site.
//
// Rule syntax (cmd/placed -faults, Parse):
//
//	rule     = site ":" mode ":" rate [":" delay]
//	rules    = rule { (";" | ",") rule }
//	site     = "cache" | "singleflight" | "queue" | "solver" |
//	           "session" | "defrag"
//	mode     = "error" | "latency" | "timeout" | "partial"
//	rate     = probability in (0, 1]
//	delay    = Go duration, required for mode "latency"
//
// Example: "solver:timeout:1;cache:latency:0.25:10ms" makes every
// exact solve miss its deadline and adds 10ms to a quarter of cache
// lookups.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand" //solverlint:allow nondeterminism fault decisions are seeded and replayable by construction; the seed is the determinism contract
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names an instrumented point in the serving stack.
type Site uint8

// Instrumented sites, in request-path order.
const (
	// SiteCache is the canonical-instance cache lookup: an injected
	// error models an unavailable cache backend (the service degrades
	// to a forced miss).
	SiteCache Site = iota
	// SiteSingleflight is the duplicate-request collapse point: an
	// injected error models a broken dedup layer (each request solves
	// solo).
	SiteSingleflight
	// SiteQueue is admission into the bounded worker pool: an injected
	// error models a full queue (shed), an injected timeout a request
	// that expired while queued.
	SiteQueue
	// SiteSolver is the exact solve itself: an injected timeout models
	// a deadline miss, an injected partial a stalled search with no
	// placement, an injected error a solver crash.
	SiteSolver
	// SiteSession is session-state access on the online serving path
	// (create/place/release/stats): an injected error models a lost or
	// corrupted session backend (→ 503), an injected timeout a session
	// lock that could not be taken in time (→ 504).
	SiteSession
	// SiteDefrag is the session defragmentation solve: an injected error
	// models a failed compaction (→ 503), an injected timeout a
	// compaction that exceeded its budget (→ 504).
	SiteDefrag

	numSites
)

// String names the site as it appears in rule specs and stats.
func (s Site) String() string {
	switch s {
	case SiteCache:
		return "cache"
	case SiteSingleflight:
		return "singleflight"
	case SiteQueue:
		return "queue"
	case SiteSolver:
		return "solver"
	case SiteSession:
		return "session"
	case SiteDefrag:
		return "defrag"
	}
	return "unknown"
}

// ParseSite is the inverse of Site.String.
func ParseSite(s string) (Site, error) {
	for site := Site(0); site < numSites; site++ {
		if site.String() == s {
			return site, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown site %q (want cache, singleflight, queue, solver, session or defrag)", s)
}

// Mode selects what a matching rule injects.
type Mode uint8

// Injection modes.
const (
	// ModeError injects ErrInjected at the site.
	ModeError Mode = iota
	// ModeLatency adds the rule's Delay to the site.
	ModeLatency
	// ModeTimeout makes the site behave as if its deadline passed.
	ModeTimeout
	// ModePartial (solver only) yields a stalled, placement-free
	// result instead of running the solve.
	ModePartial
)

// String names the mode as it appears in rule specs and stats.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeTimeout:
		return "timeout"
	case ModePartial:
		return "partial"
	}
	return "unknown"
}

// ParseMode is the inverse of Mode.String.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{ModeError, ModeLatency, ModeTimeout, ModePartial} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown mode %q (want error, latency, timeout or partial)", s)
}

// ErrInjected is the sentinel every ModeError injection surfaces;
// callers distinguish injected faults from organic ones with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule arms one site with one failure mode at a given probability.
type Rule struct {
	Site Site
	Mode Mode
	// Rate is the per-check injection probability in (0, 1].
	Rate float64
	// Delay is the added latency for ModeLatency (and may accompany
	// any mode as extra delay when set).
	Delay time.Duration
}

// Validate reports the first inconsistency in the rule.
func (r Rule) Validate() error {
	if r.Site >= numSites {
		return fmt.Errorf("faultinject: invalid site %d", r.Site)
	}
	if r.Mode > ModePartial {
		return fmt.Errorf("faultinject: invalid mode %d", r.Mode)
	}
	if r.Rate <= 0 || r.Rate > 1 {
		return fmt.Errorf("faultinject: rate %v outside (0, 1]", r.Rate)
	}
	if r.Mode == ModeLatency && r.Delay <= 0 {
		return fmt.Errorf("faultinject: latency rule on %s needs a positive delay", r.Site)
	}
	if r.Mode == ModePartial && r.Site != SiteSolver {
		return fmt.Errorf("faultinject: partial results only make sense on the solver site, not %s", r.Site)
	}
	return nil
}

// String renders the rule in spec syntax.
func (r Rule) String() string {
	s := fmt.Sprintf("%s:%s:%s", r.Site, r.Mode, strconv.FormatFloat(r.Rate, 'g', -1, 64))
	if r.Delay > 0 {
		s += ":" + r.Delay.String()
	}
	return s
}

// Decision is what one Check resolved to. The zero Decision means "no
// fault": the caller proceeds normally. Delay is returned, not slept,
// so the injector itself never blocks and tests can assert decisions
// without waiting.
type Decision struct {
	// Delay is extra latency the caller should impose before acting.
	Delay time.Duration
	// Err is ErrInjected when an error was injected.
	Err error
	// Timeout reports an injected deadline miss.
	Timeout bool
	// Partial reports an injected partial (stalled, empty) result.
	Partial bool
}

// Injected reports whether the decision carries any fault.
func (d Decision) Injected() bool {
	return d.Delay > 0 || d.Err != nil || d.Timeout || d.Partial
}

// Injector evaluates the armed rules against a seeded PRNG. Safe for
// concurrent use; all methods are nil-safe, and a nil *Injector is the
// documented "injection disabled" state.
type Injector struct {
	mu sync.Mutex
	//solverlint:allow nondeterminism explicitly seeded PRNG; chaos runs replay exactly from (seed, rules, call order)
	rng   *rand.Rand
	rules [numSites][]Rule
	hits  map[string]int64 // "site:mode" -> injections
	spec  string
}

// New builds an injector over the given rules, drawing injection
// decisions from a PRNG seeded with seed.
func New(seed int64, rules ...Rule) (*Injector, error) {
	if len(rules) == 0 {
		return nil, errors.New("faultinject: no rules")
	}
	inj := &Injector{
		//solverlint:allow nondeterminism the PRNG is explicitly seeded; replaying (seed, rules, call order) replays the decisions
		rng:  rand.New(rand.NewSource(seed)),
		hits: make(map[string]int64),
	}
	specs := make([]string, len(rules))
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		inj.rules[r.Site] = append(inj.rules[r.Site], r)
		specs[i] = r.String()
	}
	inj.spec = strings.Join(specs, ";")
	return inj, nil
}

// Parse builds an injector from a rule spec (see the package comment
// for the syntax). An empty spec returns (nil, nil): injection
// disabled.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, raw := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return New(seed, rules...)
}

func parseRule(raw string) (Rule, error) {
	parts := strings.Split(raw, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return Rule{}, fmt.Errorf("faultinject: rule %q: want site:mode:rate[:delay]", raw)
	}
	site, err := ParseSite(parts[0])
	if err != nil {
		return Rule{}, fmt.Errorf("faultinject: rule %q: %w", raw, err)
	}
	mode, err := ParseMode(parts[1])
	if err != nil {
		return Rule{}, fmt.Errorf("faultinject: rule %q: %w", raw, err)
	}
	rate, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return Rule{}, fmt.Errorf("faultinject: rule %q: bad rate %q", raw, parts[2])
	}
	r := Rule{Site: site, Mode: mode, Rate: rate}
	if len(parts) == 4 {
		d, err := time.ParseDuration(parts[3])
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: rule %q: bad delay %q", raw, parts[3])
		}
		r.Delay = d
	}
	if err := r.Validate(); err != nil {
		return Rule{}, fmt.Errorf("faultinject: rule %q: %w", raw, err)
	}
	return r, nil
}

// Check evaluates site's rules and returns the composed decision.
// Latency rules accumulate into Delay; the first matching
// error/timeout/partial rule wins and stops evaluation. On a nil
// injector Check is a single branch: no locks, no allocations.
func (i *Injector) Check(site Site) Decision {
	if i == nil {
		return Decision{}
	}
	var d Decision
	i.mu.Lock()
	for _, r := range i.rules[site] {
		// Rate 1 must always fire, so compare with <= against a draw in
		// [0, 1); Float64 never returns 1.
		//solverlint:allow nondeterminism the draw comes from the injector's seeded PRNG, so decisions replay
		if i.rng.Float64() >= r.Rate {
			continue
		}
		i.hits[r.Site.String()+":"+r.Mode.String()]++
		switch r.Mode {
		case ModeLatency:
			d.Delay += r.Delay
			continue
		case ModeError:
			d.Err = ErrInjected
		case ModeTimeout:
			d.Timeout = true
		case ModePartial:
			d.Partial = true
		}
		d.Delay += r.Delay
		break
	}
	i.mu.Unlock()
	return d
}

// Stats snapshots the injection counts as "site:mode" -> fires. Nil
// (or untouched) injectors return an empty map.
func (i *Injector) Stats() map[string]int64 {
	out := map[string]int64{}
	if i == nil {
		return out
	}
	i.mu.Lock()
	for k, v := range i.hits { //solverlint:allow nondeterminism snapshot copy of telemetry counts; consumers sort keys for display
		out[k] = v
	}
	i.mu.Unlock()
	return out
}

// String renders the armed rules in spec syntax ("" when nil), so a
// daemon can echo its effective fault configuration.
func (i *Injector) String() string {
	if i == nil {
		return ""
	}
	return i.spec
}

// Summary renders the injection counts as a stable, sorted
// "site:mode=n" list for logs and test failure messages.
func (i *Injector) Summary() string {
	st := i.Stats()
	keys := make([]string, 0, len(st))
	for k := range st { //solverlint:allow nondeterminism keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for j, k := range keys {
		parts[j] = fmt.Sprintf("%s=%d", k, st[k])
	}
	return strings.Join(parts, " ")
}
