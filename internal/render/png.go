package render

import (
	"image"
	"image/color"
	"image/png"
	"io"

	"repro/internal/core"
	"repro/internal/fabric"
)

// kindColor maps resource kinds to raster colours (same hues as the SVG
// palette).
var kindColor = map[fabric.Kind]color.RGBA{
	fabric.CLB:    {0xe8, 0xe8, 0xe8, 0xff},
	fabric.BRAM:   {0xc7, 0xd8, 0xf0, 0xff},
	fabric.DSP:    {0xd9, 0xf0, 0xc7, 0xff},
	fabric.IOB:    {0xf0, 0xe3, 0xc7, 0xff},
	fabric.Clock:  {0xe3, 0xc7, 0xf0, 0xff},
	fabric.Static: {0x70, 0x70, 0x70, 0xff},
}

// modulePaletteRGBA mirrors the SVG module palette.
var modulePaletteRGBA = []color.RGBA{
	{0xe6, 0x19, 0x4b, 0xff}, {0x3c, 0xb4, 0x4b, 0xff}, {0x43, 0x63, 0xd8, 0xff},
	{0xf5, 0x82, 0x31, 0xff}, {0x91, 0x1e, 0xb4, 0xff}, {0x46, 0xf0, 0xf0, 0xff},
	{0xf0, 0x32, 0xe6, 0xff}, {0xbc, 0xf6, 0x0c, 0xff}, {0xfa, 0xbe, 0xbe, 0xff},
	{0x00, 0x80, 0x80, 0xff}, {0xe6, 0xbe, 0xff, 0xff}, {0x9a, 0x63, 0x24, 0xff},
	{0xff, 0xfa, 0xc8, 0xff}, {0x80, 0x00, 0x00, 0xff}, {0xaa, 0xff, 0xc3, 0xff},
	{0x80, 0x80, 0x00, 0xff}, {0xff, 0xd8, 0xb1, 0xff}, {0x00, 0x00, 0x75, 0xff},
	{0x80, 0x80, 0x80, 0xff}, {0xff, 0xe1, 0x19, 0xff},
}

// PNG writes a placement floorplan as a PNG image; cell is the pixel
// size of one tile (default 8). Tile (0,0) is rendered bottom-left.
func PNG(w io.Writer, r *fabric.Region, ps []core.Placement, cell int) error {
	if cell <= 0 {
		cell = 8
	}
	img := image.NewRGBA(image.Rect(0, 0, r.W()*cell, r.H()*cell))
	grey := color.RGBA{0xff, 0xff, 0xff, 0xff}

	fillTile := func(x, y int, c color.RGBA) {
		px0 := x * cell
		py0 := (r.H() - 1 - y) * cell
		for py := py0; py < py0+cell; py++ {
			for px := px0; px < px0+cell; px++ {
				// One-pixel grid line on the top and left edge of each
				// tile keeps the tile boundaries readable.
				if px == px0 || py == py0 {
					img.SetRGBA(px, py, grey)
				} else {
					img.SetRGBA(px, py, c)
				}
			}
		}
	}

	for y := 0; y < r.H(); y++ {
		for x := 0; x < r.W(); x++ {
			c, ok := kindColor[r.KindAt(x, y)]
			if !ok {
				c = grey
			}
			fillTile(x, y, c)
		}
	}
	for i, p := range ps {
		c := modulePaletteRGBA[i%len(modulePaletteRGBA)]
		for _, t := range p.Tiles() {
			if t.X >= 0 && t.Y >= 0 && t.X < r.W() && t.Y < r.H() {
				fillTile(t.X, t.Y, c)
			}
		}
	}
	return png.Encode(w, img)
}
