// Package module implements the paper's module formulation (Section
// III.A): tiles with resource types, tilesets, shapes (one physical
// layout of a module) and modules (sets of functionally equivalent
// shapes — the design alternatives). It also provides layout synthesis
// and design-alternative generation used by the evaluation workloads.
package module

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fabric"
	"repro/internal/grid"
)

// Tile is one unit cell of a shape: a relative origin coordinate pair
// plus the resource type the cell must be placed on (the paper's
// t_{x,y,k}).
type Tile struct {
	At   grid.Point
	Kind fabric.Kind
}

// String returns "(x,y):KIND".
func (t Tile) String() string { return fmt.Sprintf("%v:%s", t.At, t.Kind) }

// Shape is one possible physical implementation of a module: a non-empty
// set of tiles in relative coordinates, normalised so its bounding box
// starts at (0, 0) and its tiles are in canonical order. Shapes are
// immutable after construction.
//
// The paper groups a shape's tiles into per-kind tilesets; Shape exposes
// the same view through TilesOfKind, but stores a flat normalised list,
// which is what the placer and the geost kernel consume.
type Shape struct {
	tiles  []Tile
	bounds grid.Rect
	hist   fabric.Histogram
	key    string
}

// NewShape builds a normalised shape from tiles. It rejects empty tile
// sets, duplicate coordinates and tiles whose kind cannot host module
// logic (module tiles land on CLB/BRAM/DSP only).
func NewShape(tiles []Tile) (*Shape, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("module: shape must contain at least one tile")
	}
	ts := make([]Tile, len(tiles))
	copy(ts, tiles)
	seen := make(map[grid.Point]bool, len(ts))
	minX, minY := ts[0].At.X, ts[0].At.Y
	for _, t := range ts {
		if !t.Kind.Placeable() {
			return nil, fmt.Errorf("module: tile %v has unplaceable kind %s", t.At, t.Kind)
		}
		if seen[t.At] {
			return nil, fmt.Errorf("module: duplicate tile at %v", t.At)
		}
		seen[t.At] = true
		if t.At.X < minX {
			minX = t.At.X
		}
		if t.At.Y < minY {
			minY = t.At.Y
		}
	}
	s := &Shape{tiles: ts}
	for i := range s.tiles {
		s.tiles[i].At = s.tiles[i].At.Sub(grid.Pt(minX, minY))
		s.hist.Add(s.tiles[i].Kind)
	}
	sort.Slice(s.tiles, func(i, j int) bool {
		a, b := s.tiles[i], s.tiles[j]
		if a.At != b.At {
			return a.At.Less(b.At)
		}
		return a.Kind < b.Kind
	})
	pts := make([]grid.Point, len(s.tiles))
	for i, t := range s.tiles {
		pts[i] = t.At
	}
	s.bounds = grid.BoundsOf(pts)
	var sb strings.Builder
	for _, t := range s.tiles {
		fmt.Fprintf(&sb, "%d,%d,%d;", t.At.X, t.At.Y, t.Kind)
	}
	s.key = sb.String()
	return s, nil
}

// MustShape is NewShape panicking on error, for statically known shapes.
func MustShape(tiles []Tile) *Shape {
	s, err := NewShape(tiles)
	if err != nil {
		panic(err)
	}
	return s
}

// Tiles returns the normalised tile list. Callers must not mutate it.
func (s *Shape) Tiles() []Tile { return s.tiles }

// Points returns the tile coordinates (without kinds) in canonical
// order. The slice is freshly allocated on every call.
func (s *Shape) Points() []grid.Point {
	pts := make([]grid.Point, len(s.tiles))
	for i, t := range s.tiles {
		pts[i] = t.At
	}
	return pts
}

// TilesOfKind returns the tileset of kind k (tiles in canonical order).
func (s *Shape) TilesOfKind(k fabric.Kind) []grid.Point {
	var out []grid.Point
	for _, t := range s.tiles {
		if t.Kind == k {
			out = append(out, t.At)
		}
	}
	return out
}

// Size returns the number of tiles.
func (s *Shape) Size() int { return len(s.tiles) }

// Bounds returns the tight bounding box (origin (0,0)).
func (s *Shape) Bounds() grid.Rect { return s.bounds }

// W returns the bounding-box width.
func (s *Shape) W() int { return s.bounds.W() }

// H returns the bounding-box height.
func (s *Shape) H() int { return s.bounds.H() }

// Histogram returns per-kind tile counts.
func (s *Shape) Histogram() fabric.Histogram { return s.hist }

// Key returns a canonical fingerprint: two shapes are geometrically
// identical (same tiles, same kinds) iff their keys are equal.
func (s *Shape) Key() string { return s.key }

// Equal reports whether s and o have identical normalised tiles.
func (s *Shape) Equal(o *Shape) bool { return o != nil && s.key == o.key }

// Transform returns the shape mapped under t and renormalised. The
// resource kind of each tile is preserved.
func (s *Shape) Transform(t grid.Transform) *Shape {
	tiles := make([]Tile, len(s.tiles))
	for i, tl := range s.tiles {
		tiles[i] = Tile{At: t.Apply(tl.At), Kind: tl.Kind}
	}
	out := MustShape(tiles)
	return out
}

// Transform180 returns the 180°-rotated shape. It is the only
// non-identity rotation the paper admits for modules using rectangular
// dedicated resources (90°/270° would misalign them with the fabric's
// vertical resource columns).
func (s *Shape) Transform180() *Shape { return s.Transform(grid.Rot180) }

// String renders the shape as a small resource map, top row first, with
// '.' for cells of the bounding box not covered by a tile.
func (s *Shape) String() string {
	cover := make(map[grid.Point]fabric.Kind, len(s.tiles))
	for _, t := range s.tiles {
		cover[t.At] = t.Kind
	}
	var sb strings.Builder
	for y := s.bounds.MaxY - 1; y >= 0; y-- {
		for x := 0; x < s.bounds.MaxX; x++ {
			if k, ok := cover[grid.Pt(x, y)]; ok {
				sb.WriteByte(k.Rune())
			} else {
				sb.WriteByte('.')
			}
		}
		if y > 0 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
