package csp_test

import (
	"fmt"

	"repro/internal/csp"
)

// ExampleSolve enumerates the solutions of a tiny constraint problem.
func ExampleSolve() {
	st := csp.NewStore()
	x := st.NewVarRange("x", 0, 2)
	y := st.NewVarRange("y", 0, 2)
	csp.NotEqual(st, x, y)
	csp.LessEq(st, x, y)

	res, err := csp.Solve(st, []*csp.Var{x, y}, csp.Options{}, func(s *csp.Store) bool {
		fmt.Printf("x=%d y=%d\n", x.Value(), y.Value())
		return true
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("solutions:", res.Solutions, "complete:", res.Complete)
	// Output:
	// x=0 y=1
	// x=0 y=2
	// x=1 y=2
	// solutions: 3 complete: true
}

// ExampleMinimize finds the optimum of a small model by
// branch-and-bound.
func ExampleMinimize() {
	st := csp.NewStore()
	x := st.NewVarRange("x", 0, 9)
	y := st.NewVarRange("y", 0, 9)
	obj := st.NewVarRange("obj", 0, 18)
	csp.Sum(st, obj, x, y)
	csp.LessEqOffset(st, x, y, 3) // x + 3 <= y

	res, err := csp.Minimize(st, []*csp.Var{x, y}, obj, csp.Options{}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best=%d optimal=%v\n", res.Best, res.Optimal)
	// Output:
	// best=3 optimal=true
}
