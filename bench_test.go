// Package repro_test benchmarks regenerate the paper's evaluation
// artifacts: one benchmark (or benchmark pair) per table and figure,
// plus the ablations described in DESIGN.md. Quality metrics are
// attached to the benchmark output via ReportMetric:
//
//	util_pct     average resource utilization of the placement (%)
//	height_rows  occupied height of the placement (rows)
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/module"
	"repro/internal/online"
	"repro/internal/workload"
)

// benchPlacerOptions is the per-solve configuration used across the
// benchmark suite: the same convergence criterion as the experiments at
// a benchmark-friendly scale.
func benchPlacerOptions() core.Options {
	return core.Options{Timeout: 30 * time.Second, StallNodes: 800}
}

// reportPlacement attaches the quality metrics of a placement run.
// Nodes and backtracks are search-effort metrics: deterministic for a
// given configuration, they expose presolve/pruning regressions that
// ns/op alone would hide behind machine noise (scripts/benchgate.sh
// gates on them).
func reportPlacement(b *testing.B, res *core.Result) {
	b.Helper()
	if !res.Found {
		b.Fatal("no placement found")
	}
	b.ReportMetric(res.Utilization*100, "util_pct")
	b.ReportMetric(float64(res.Height), "height_rows")
	b.ReportMetric(float64(res.Nodes), "nodes")
	b.ReportMetric(float64(res.Backtracks), "backtracks")
}

// BenchmarkTable1 regenerates Table I: the same generated module batch
// placed without design alternatives (primary layout only) and with all
// four alternatives. Compare the two sub-benchmarks' util_pct and ns/op:
// the paper reports 53%→65% and 2.55s→10.82s.
func BenchmarkTable1(b *testing.B) {
	region := experiments.TableIRegion()
	mods := workload.MustGenerate(workload.Config{}, rand.New(rand.NewSource(1)))
	single := workload.FirstShapesOnly(mods)
	placer := core.New(region, benchPlacerOptions())

	b.Run("NoAlternatives", func(b *testing.B) {
		var last *core.Result
		for i := 0; i < b.N; i++ {
			res, err := placer.Place(single)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPlacement(b, last)
	})
	b.Run("Alternatives", func(b *testing.B) {
		var last *core.Result
		for i := 0; i < b.N; i++ {
			res, err := placer.Place(mods)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPlacement(b, last)
	})
	// The A/B arm for the presolve layer: identical instance and
	// convergence criterion, pipeline disabled. Compare nodes and
	// height_rows against Alternatives for the presolve effect.
	b.Run("AlternativesPresolveOff", func(b *testing.B) {
		opts := benchPlacerOptions()
		opts.Presolve = core.PresolveOff
		off := core.New(region, opts)
		var last *core.Result
		for i := 0; i < b.N; i++ {
			res, err := off.Place(mods)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPlacement(b, last)
	})
}

// BenchmarkTable1Parallel runs the Table-I alternatives arm (the
// expensive one, 30 modules with four shapes each) at increasing
// worker counts. Utilization must not move with the worker count —
// only ns/op should fall. The workers=1 sub-benchmark still routes
// through the parallel machinery, so the sequential baseline for
// speedup claims is BenchmarkTable1/Alternatives.
func BenchmarkTable1Parallel(b *testing.B) {
	region := experiments.TableIRegion()
	mods := workload.MustGenerate(workload.Config{}, rand.New(rand.NewSource(1)))
	for _, workers := range []int{1, 2, 4, 8} {
		opts := benchPlacerOptions()
		opts.Workers = workers
		b.Run(benchName("workers", workers), func(b *testing.B) {
			placer := core.New(region, opts)
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := placer.Place(mods)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPlacement(b, last)
		})
	}
}

// benchFigScenario runs a figure scenario (module set on its region)
// with and without alternatives.
func benchFigScenario(b *testing.B, region *fabric.Region, mods []*module.Module) {
	b.Helper()
	placer := core.New(region, benchPlacerOptions())
	single := workload.FirstShapesOnly(mods)
	b.Run("NoAlternatives", func(b *testing.B) {
		var last *core.Result
		for i := 0; i < b.N; i++ {
			res, err := placer.Place(single)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPlacement(b, last)
	})
	b.Run("Alternatives", func(b *testing.B) {
		var last *core.Result
		for i := 0; i < b.N; i++ {
			res, err := placer.Place(mods)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPlacement(b, last)
	})
}

// BenchmarkFig3Scenario regenerates the Figure 3 comparison: six modules
// with a base layout and its 180° rotation on a small heterogeneous
// region.
func BenchmarkFig3Scenario(b *testing.B) {
	spec := fabric.Spec{Name: "fig3", W: 24, H: 12, BRAMColumns: []int{4, 16}}
	region := spec.MustBuild().FullRegion()
	mods := workload.MustGenerate(workload.Config{
		NumModules: 6, CLBMin: 6, CLBMax: 14, BRAMMax: 2, Alternatives: 2,
	}, rand.New(rand.NewSource(1)))
	benchFigScenario(b, region, mods)
}

// BenchmarkFig5Scenario regenerates the Figure 5 comparison: twelve
// modules with four alternatives on a wider region.
func BenchmarkFig5Scenario(b *testing.B) {
	spec := fabric.Spec{Name: "fig5", W: 36, H: 24, BRAMColumns: []int{5, 17, 29}, DSPColumns: []int{16}}
	region := spec.MustBuild().FullRegion()
	mods := workload.MustGenerate(workload.Config{
		NumModules: 12, CLBMin: 8, CLBMax: 24, BRAMMax: 3, Alternatives: 4,
	}, rand.New(rand.NewSource(5)))
	benchFigScenario(b, region, mods)
}

// BenchmarkBaselines compares the heuristic placers (with design
// alternatives enabled) against the CP placer on the Table-I workload —
// context for the ~36% utilization the paper cites for prior heuristic
// flows.
func BenchmarkBaselines(b *testing.B) {
	region := experiments.TableIRegion()
	mods := workload.MustGenerate(workload.Config{}, rand.New(rand.NewSource(1)))

	b.Run("constraint-programming", func(b *testing.B) {
		placer := core.New(region, benchPlacerOptions())
		var last *core.Result
		for i := 0; i < b.N; i++ {
			res, err := placer.Place(mods)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPlacement(b, last)
	})
	for _, alg := range baseline.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := baseline.Place(region, mods, alg, baseline.Options{
					UseAlternatives: true, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPlacement(b, last)
		})
	}
}

// BenchmarkAlternativeCount sweeps the number of design alternatives per
// module (ablation): utilization should rise and solve time grow with k.
func BenchmarkAlternativeCount(b *testing.B) {
	region := experiments.TableIRegion()
	for _, k := range []int{1, 2, 4, 8} {
		mods := workload.MustGenerate(workload.Config{Alternatives: k},
			rand.New(rand.NewSource(1)))
		b.Run(benchName("k", k), func(b *testing.B) {
			placer := core.New(region, benchPlacerOptions())
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := placer.Place(mods)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPlacement(b, last)
		})
	}
}

// BenchmarkHeterogeneity places the same CLB-only workload on a
// homogeneous fabric and on the heterogeneous Table-I fabric (ablation):
// dedicated-resource columns restrict placement.
func BenchmarkHeterogeneity(b *testing.B) {
	het := experiments.TableIRegion()
	homo := fabric.Homogeneous(het.W(), het.H()).FullRegion()
	mods := workload.MustGenerate(workload.Config{NoBRAM: true},
		rand.New(rand.NewSource(1)))
	for _, tc := range []struct {
		name   string
		region *fabric.Region
	}{
		{"homogeneous", homo},
		{"heterogeneous", het},
	} {
		b.Run(tc.name, func(b *testing.B) {
			placer := core.New(tc.region, benchPlacerOptions())
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := placer.Place(mods)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPlacement(b, last)
		})
	}
}

// BenchmarkMaskedResources contrasts native BRAM use with [9]-style
// masking (BRAM demand lowered onto extra CLBs), the ablation behind the
// paper's argument that masking dedicated resources is detrimental.
func BenchmarkMaskedResources(b *testing.B) {
	region := experiments.TableIRegion()
	rng := rand.New(rand.NewSource(1))
	demands := make([]module.Demand, 30)
	for i := range demands {
		demands[i] = module.Demand{CLB: 20 + rng.Intn(81), BRAM: rng.Intn(5)}
	}
	build := func(mask bool) []*module.Module {
		mods := make([]*module.Module, len(demands))
		for i, d := range demands {
			opts := module.AlternativeOptions{Count: 4}
			if mask {
				d = module.Demand{CLB: d.CLB + experiments.MaskedCLBPerBRAM*d.BRAM}
				if module.BalancedWidth(d) > 10 {
					opts.BaseWidth = 10
				}
			}
			m, err := module.GenerateAlternatives(benchName("m", i), d, opts)
			if err != nil {
				b.Fatal(err)
			}
			mods[i] = m
		}
		return mods
	}
	for _, tc := range []struct {
		name string
		mask bool
	}{
		{"native", false},
		{"masked", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			mods := build(tc.mask)
			placer := core.New(region, benchPlacerOptions())
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := placer.Place(mods)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPlacement(b, last)
		})
	}
}

// BenchmarkSearchStrategy sweeps the placer's branching strategies and
// value orderings (ablation on the design choices in DESIGN.md).
func BenchmarkSearchStrategy(b *testing.B) {
	region := experiments.TableIRegion()
	mods := workload.MustGenerate(workload.Config{NumModules: 15},
		rand.New(rand.NewSource(1)))
	for _, s := range []core.Strategy{core.StrategyFirstFail, core.StrategyLargestFirst, core.StrategyInputOrder} {
		for _, v := range []core.ValueOrder{core.OrderBottomLeft, core.OrderLexicographic} {
			opts := benchPlacerOptions()
			opts.Strategy = s
			opts.ValueOrder = v
			b.Run(s.String()+"/"+v.String(), func(b *testing.B) {
				placer := core.New(region, opts)
				var last *core.Result
				for i := 0; i < b.N; i++ {
					res, err := placer.Place(mods)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				reportPlacement(b, last)
			})
		}
	}
}

// BenchmarkValidAnchors measures the anchor-precomputation cost (the
// fused M_a ∧ M_b constraint) for one shape on the Table-I region.
func BenchmarkValidAnchors(b *testing.B) {
	region := experiments.TableIRegion()
	m, err := module.GenerateAlternatives("m", module.Demand{CLB: 60, BRAM: 2},
		module.AlternativeOptions{Count: 1})
	if err != nil {
		b.Fatal(err)
	}
	shape := m.Shape(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ValidAnchors(region, shape)
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + string(buf[i:])
}

// BenchmarkOnlineManagers runs the online space-management comparison
// (the related-work axes: free-space vs occupied-space management, 1D
// slots vs 2D placement, design alternatives online) on a saturating
// task stream over the Table-I region. service_pct is the fraction of
// arrivals successfully placed.
func BenchmarkOnlineManagers(b *testing.B) {
	region := experiments.TableIRegion()
	stream := online.StreamConfig{Tasks: 150, MeanInterarrival: 2, MeanDuration: 120}
	stream.Library.CLBMin, stream.Library.CLBMax = 10, 60
	stream.Library.BRAMMax = 3
	stream.Library.Alternatives = 4
	stream.Library.NumModules = 1
	tasks, err := online.GenerateStream(stream, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for _, mgr := range online.Managers() {
		b.Run(mgr.Name(), func(b *testing.B) {
			var last *online.Stats
			for i := 0; i < b.N; i++ {
				st, err := online.Simulate(region, mgr, tasks, fabric.DefaultFrameModel())
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(last.ServiceLevel*100, "service_pct")
			b.ReportMetric(last.MeanUtil*100, "util_pct")
		})
	}
}

// BenchmarkPropagationStrength contrasts plain forward-checking
// non-overlap with geost compulsory-part pruning (ablation on the
// constraint kernel's design).
func BenchmarkPropagationStrength(b *testing.B) {
	region := experiments.TableIRegion()
	mods := workload.MustGenerate(workload.Config{NumModules: 15},
		rand.New(rand.NewSource(1)))
	for _, tc := range []struct {
		name   string
		strong bool
	}{
		{"forward-checking", false},
		{"compulsory-part", true},
	} {
		opts := benchPlacerOptions()
		opts.StrongPropagation = tc.strong
		b.Run(tc.name, func(b *testing.B) {
			placer := core.New(region, opts)
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := placer.Place(mods)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPlacement(b, last)
		})
	}
}
