// Command placed is the placement daemon: a long-lived HTTP/JSON
// server wrapping the constraint placer behind a canonical instance
// cache (see internal/service). Repeated requests for the same module
// mix — the common case when a runtime-reconfigurable system keeps
// re-deriving schedules over one module library — are answered from
// the cache in sub-millisecond time instead of re-running a
// multi-second solve.
//
// Example:
//
//	placed -addr localhost:8080 -workers 4 -cache-entries 4096
//	curl -s -X POST localhost:8080/v1/place -d '{
//	  "fabric": "virtex4-like-72x60",
//	  "generate": {"seed": 1, "numModules": 6, "alternatives": 4},
//	  "options": {"stallNodes": 400}
//	}'
//
// The first request solves (X-Cache: miss); an identical request —
// even with modules or shapes listed in a different order — returns
// the byte-identical body from the cache (X-Cache: hit). /v1/healthz
// answers liveness probes, /v1/stats reports cache hit ratio, queue
// depth, in-flight solves and rolling SLO attainment, and /v1/fabrics
// lists the device catalog.
//
// The daemon also serves stateful online sessions: POST /v1/sessions
// opens a fabric-backed session with a selectable greedy manager,
// POST /v1/sessions/{id}/place admits one arrival (falling back to a
// CP replan when greedy placement is blocked), DELETE
// /v1/sessions/{id}/modules/{task} releases a resident, POST
// /v1/sessions/{id}/defrag compacts the layout and prices every
// relocation via the frame model, and GET /v1/sessions/{id}/stats
// reports occupancy and fragmentation. Idle sessions expire after
// -session-ttl; -max-sessions bounds the table with LRU eviction.
//
// Every request is traced: the response carries an X-Trace-Id header,
// one JSON access-log line per request goes to -access-log (stdout by
// default), /debug/traces dumps the recent and slowest request
// traces, and -trace streams the span/solver event JSONL that
// cmd/tracecat renders into per-trace waterfalls.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/service"
)

// cliOpts carries the parsed command line into run.
type cliOpts struct {
	addr           string
	workers        int
	cacheEntries   int
	maxInFlight    int
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	metricsPath    string
	tracePath      string
	accessLog      string
	sloLatency     time.Duration
	sloWindow      time.Duration
	degrade        bool
	presolve       string
	faults         string
	faultsSeed     int64
	maxSessions    int
	sessionTTL     time.Duration
}

func main() {
	var o cliOpts
	flag.StringVar(&o.addr, "addr", "localhost:8080", "listen address")
	flag.IntVar(&o.workers, "workers", 2, "concurrent solver goroutines")
	flag.IntVar(&o.cacheEntries, "cache-entries", 1024, "canonical-instance cache capacity")
	flag.IntVar(&o.maxInFlight, "max-inflight", 64, "admission queue capacity before 429")
	flag.DurationVar(&o.defaultTimeout, "default-timeout", 10*time.Second, "per-solve budget when the request sets none")
	flag.DurationVar(&o.maxTimeout, "max-timeout", time.Minute, "cap on the per-solve budget a request may ask for")
	flag.StringVar(&o.metricsPath, "metrics", "", "dump metrics at exit: - for a summary table, a path for Prometheus text format")
	flag.StringVar(&o.tracePath, "trace", "", "stream span and solver events as JSONL to this path (- for stdout, feed to tracecat)")
	flag.StringVar(&o.accessLog, "access-log", "-", "write one JSON line per request to this path (- for stdout, empty to disable)")
	flag.DurationVar(&o.sloLatency, "slo-latency", 500*time.Millisecond, "request-latency objective for /v1/stats SLO accounting")
	flag.DurationVar(&o.sloWindow, "slo-window", time.Hour, "headline SLO attainment window (max 1h)")
	flag.BoolVar(&o.degrade, "degrade", true, "serve approximate baseline placements when the exact solve times out or is shed")
	flag.StringVar(&o.presolve, "presolve", "on", "default presolve mode for requests that set none: on, off")
	flag.StringVar(&o.faults, "faults", "", "fault-injection rules, e.g. 'solver:timeout:0.2;cache:latency:0.5:10ms' (chaos testing; empty disables)")
	flag.Int64Var(&o.faultsSeed, "faults-seed", 1, "PRNG seed for -faults, for reproducible chaos runs")
	flag.IntVar(&o.maxSessions, "max-sessions", 256, "live online sessions before LRU eviction")
	flag.DurationVar(&o.sessionTTL, "session-ttl", 15*time.Minute, "idle time after which an online session expires")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "placed:", err)
		os.Exit(1)
	}
}

func run(o cliOpts) (err error) {
	session, err := obs.Start(obs.Config{MetricsPath: o.metricsPath, TracePath: o.tracePath})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := session.Close(); err == nil {
			err = cerr
		}
	}()
	reg := session.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}

	// The tracer always runs: the in-memory recent/slowest rings behind
	// /debug/traces are cheap, and the span JSONL stream only flows
	// when -trace opened a sink.
	tracer := obs.NewTracer(obs.TracerConfig{Recorder: session.Recorder})

	var accessLog io.Writer
	switch o.accessLog {
	case "":
	case "-":
		accessLog = os.Stdout
	default:
		f, ferr := os.Create(o.accessLog)
		if ferr != nil {
			return fmt.Errorf("access log: %w", ferr)
		}
		defer f.Close()
		accessLog = f
	}

	faults, err := faultinject.Parse(o.faults, o.faultsSeed)
	if err != nil {
		return err
	}
	if faults != nil {
		fmt.Printf("placed: fault injection ACTIVE: %s (seed %d)\n", faults, o.faultsSeed)
	}

	presolve, err := core.ParsePresolve(o.presolve)
	if err != nil {
		return err
	}

	svc := service.New(service.Config{
		Workers:         o.workers,
		CacheEntries:    o.cacheEntries,
		MaxInFlight:     o.maxInFlight,
		DefaultTimeout:  o.defaultTimeout,
		MaxTimeout:      o.maxTimeout,
		DefaultPresolve: presolve,
		Registry:        reg,
		Tracer:          tracer,
		AccessLog:       accessLog,
		SLOLatency:      o.sloLatency,
		SLOWindow:       o.sloWindow,
		Degrade:         o.degrade,
		Faults:          faults,
		MaxSessions:     o.maxSessions,
		SessionTTL:      o.sessionTTL,
	})
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("placed: serving on http://%s (workers=%d cache=%d max-inflight=%d)\n",
			o.addr, o.workers, o.cacheEntries, o.maxInFlight)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("placed: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
