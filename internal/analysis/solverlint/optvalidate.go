package solverlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// OptValidate keeps csp.Options validation exhaustive: every numeric
// Options field is a budget or a degree knob whose negative values are
// nonsense, and Options.withDefaults rejects them with a typed
// *OptionError so callers can distinguish misconfiguration from solver
// failure. A new numeric field that skips withDefaults ships an
// unvalidated knob; this analyzer flags it at the field declaration.
// The check requires both (a) a reference to the field inside
// withDefaults and (b) an OptionError composite literal carrying the
// field's name, so a field that is read but waved through unvalidated
// is still a finding.
var OptValidate = &Analyzer{
	Name: "optvalidate",
	Doc:  "numeric Options fields must be covered by the typed OptionError validation in withDefaults",
	Run:  runOptValidate,
}

func runOptValidate(pass *Pass) error {
	opts := lookupStruct(pass, "Options")
	if opts == nil {
		return nil // package has no Options struct; nothing to check
	}
	numeric := numericFields(opts)
	if len(numeric) == 0 {
		return nil
	}
	wd := findWithDefaults(pass)
	if wd == nil {
		pass.Reportf(opts.Obj().Pos(),
			"Options has numeric fields (%s) but no withDefaults method to validate them with OptionError",
			fieldNames(numeric))
		return nil
	}
	referenced, named := withDefaultsCoverage(pass, wd, numeric)
	for _, f := range numeric {
		switch {
		case !referenced[f.Name()]:
			pass.Reportf(f.Pos(),
				"Options.%s is never referenced in withDefaults: add a negative-value check returning *OptionError{Field: %q}",
				f.Name(), f.Name())
		case !named[f.Name()]:
			pass.Reportf(f.Pos(),
				"Options.%s is read in withDefaults but no OptionError names it: invalid values pass validation silently",
				f.Name())
		}
	}
	return nil
}

// lookupStruct returns the named struct type called name in the
// package scope, or nil.
func lookupStruct(pass *Pass, name string) *types.Named {
	tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// numericFields returns the fields of the struct whose underlying type
// is a (signed or unsigned) integer.
func numericFields(named *types.Named) []*types.Var {
	st := named.Underlying().(*types.Struct)
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			out = append(out, f)
		}
	}
	return out
}

func fieldNames(fields []*types.Var) string {
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name()
	}
	return strings.Join(names, ", ")
}

// findWithDefaults returns the withDefaults func/method declaration.
func findWithDefaults(pass *Pass) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "withDefaults" && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// withDefaultsCoverage scans wd's body and reports, per numeric field
// name, whether it is referenced through a selector and whether an
// OptionError composite literal names it in a string literal.
func withDefaultsCoverage(pass *Pass, wd *ast.FuncDecl, fields []*types.Var) (referenced, named map[string]bool) {
	fieldSet := map[types.Object]string{}
	for _, f := range fields {
		fieldSet[f] = f.Name()
	}
	referenced = map[string]bool{}
	named = map[string]bool{}
	ast.Inspect(wd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok {
				if name, ok := fieldSet[sel.Obj()]; ok {
					referenced[name] = true
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil && isOptionErrorType(t) {
				for _, lit := range stringLiterals(n) {
					named[lit] = true
				}
			}
		}
		return true
	})
	return referenced, named
}

func isOptionErrorType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "OptionError"
}

// stringLiterals returns the unquoted string literal values appearing
// directly in lit's elements.
func stringLiterals(lit *ast.CompositeLit) []string {
	var out []string
	for _, elt := range lit.Elts {
		e := elt
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		if bl, ok := e.(*ast.BasicLit); ok && bl.Kind == token.STRING {
			if s, err := strconv.Unquote(bl.Value); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}
