package core

import (
	"fmt"
	"sync"

	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/module"
)

// Portfolio runs several placer configurations concurrently on the same
// instance and returns the best result: the lowest occupied height, ties
// broken by higher utilization and then by configuration order.
//
// Portfolio search exploits the complementary strengths of branching
// heuristics: first-fail converges fast on tightly constrained
// instances, largest-first on area-dominated ones. Each arm gets its
// own constraint store; the arms are coupled through one shared
// incumbent bound (csp.SharedBound), so a height proven by any arm
// immediately prunes the others. The bound is non-strict — an arm may
// still match the best published height and report its own placement —
// so the winner selection below sees every arm's best. Arms configured
// with Options.Workers > 1 additionally parallelise within the arm;
// their workers prune against the same global bound.
//
// Reproducibility: with exhaustive arms (no StallNodes, no Timeout)
// the returned Height is deterministic — it is the instance's true
// optimum. The returned Placement is one optimal placement but may
// vary between runs: the moment another arm's bound lands shifts
// domain sizes mid-search, which steers dynamic heuristics like
// first-fail down different (equally optimal) branches. Callers
// needing bit-identical placements should run a single Placer — the
// sequential and parallel single-placer paths are both deterministic.
//
// A caller-supplied cfg.Bound is preserved (coupling this portfolio to
// an even wider search); otherwise all arms get one fresh shared bound.
func Portfolio(region *fabric.Region, mods []*module.Module, configs []Options) (*Result, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("core: empty portfolio")
	}
	bound := csp.NewSharedBound()
	results := make([]*Result, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i, cfg := range configs {
		if cfg.Bound == nil {
			cfg.Bound = bound
		}
		wg.Add(1)
		go func(i int, cfg Options) {
			defer wg.Done()
			results[i], errs[i] = New(region, cfg).Place(mods)
		}(i, cfg)
	}
	wg.Wait()

	var best *Result
	for i, res := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: portfolio config %d: %w", i, errs[i])
		}
		if !res.Found {
			continue
		}
		if best == nil || res.Height < best.Height ||
			(res.Height == best.Height && res.Utilization > best.Utilization) {
			best = res
		}
	}
	if best == nil {
		// All workers agree the instance is infeasible (or budgets
		// expired without a solution); return the first result so the
		// caller sees node counts.
		return results[0], nil
	}
	return best, nil
}

// DefaultPortfolio returns a spread of placer configurations sharing the
// given base options: the three branching strategies with bottom-left
// ordering, plus first-fail with strong propagation.
func DefaultPortfolio(base Options) []Options {
	ff := base
	ff.Strategy = StrategyFirstFail
	lf := base
	lf.Strategy = StrategyLargestFirst
	io := base
	io.Strategy = StrategyInputOrder
	sp := base
	sp.Strategy = StrategyFirstFail
	sp.StrongPropagation = true
	return []Options{ff, lf, io, sp}
}
