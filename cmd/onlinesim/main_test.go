package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func baseOpts() cliOpts {
	return cliOpts{
		device:   "spartan-like-24x16",
		tasks:    30,
		seed:     1,
		interarr: 3,
		duration: 60,
		clbMin:   4,
		clbMax:   10,
	}
}

func TestRunAllManagers(t *testing.T) {
	if err := run(baseOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleManager(t *testing.T) {
	o := baseOpts()
	o.tasks = 20
	o.manager = "first-fit"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegionFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.spec")
	if err := os.WriteFile(path, []byte("region t 20 10\nbramcols 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.device = ""
	o.regionPath = path
	o.tasks = 15
	o.seed = 2
	o.bramMax = 1
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunMetrics checks the online-simulation instrumentation: the
// replan manager reports per-request latency histograms and replan
// counts through the -metrics surface.
func TestRunMetrics(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	o := baseOpts()
	o.tasks = 25
	o.manager = "first-fit+cp-replan"
	o.obs = obs.Config{MetricsPath: metricsPath}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"online_requests_total",
		`online_place_latency_seconds_bucket{outcome="accepted",le=`,
		"online_service_level",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestRunErrors(t *testing.T) {
	o := baseOpts()
	o.device = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown device accepted")
	}
	o = baseOpts()
	o.tasks = 10
	o.manager = "bogus-manager"
	if err := run(o); err == nil {
		t.Error("unknown manager accepted")
	}
	o = baseOpts()
	o.device = ""
	o.regionPath = "/nonexistent"
	if err := run(o); err == nil {
		t.Error("missing region file accepted")
	}
}
