package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T) (region, modules, placement string) {
	t.Helper()
	dir := t.TempDir()
	region = filepath.Join(dir, "region.spec")
	modules = filepath.Join(dir, "modules.spec")
	placement = filepath.Join(dir, "placement.spec")
	files := map[string]string{
		region:    "region t 12 6\n",
		modules:   "module a\nshape\nrect 0 0 3 2 CLB\nend\nmodule b\nshape\nrect 0 0 2 2 CLB\nend\n",
		placement: "place a 0 0 0\nplace b 0 4 0\n",
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return region, modules, placement
}

func TestRunValid(t *testing.T) {
	region, modules, placement := writeAll(t)
	if err := run(region, modules, placement); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidOverlap(t *testing.T) {
	region, modules, placement := writeAll(t)
	if err := os.WriteFile(placement, []byte("place a 0 0 0\nplace b 0 1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(region, modules, placement); err == nil {
		t.Fatal("overlapping placement accepted")
	}
}

func TestRunMissingFiles(t *testing.T) {
	region, modules, placement := writeAll(t)
	if err := run("/nonexistent", modules, placement); err == nil {
		t.Error("missing region accepted")
	}
	if err := run(region, "/nonexistent", placement); err == nil {
		t.Error("missing modules accepted")
	}
	if err := run(region, modules, "/nonexistent"); err == nil {
		t.Error("missing placement accepted")
	}
}
