package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/online"
	"repro/internal/workload"
)

// quickCfg is a reduced-scale protocol for tests: 2 runs, 8 modules,
// fast convergence.
func quickCfg() RunConfig {
	return RunConfig{
		Runs: 2,
		Seed: 1,
		Workload: workload.Config{
			NumModules: 8,
			CLBMin:     10, CLBMax: 40,
			BRAMMin: 0, BRAMMax: 3,
			Alternatives: 4,
		},
		StallNodes: 400,
		Timeout:    10 * time.Second,
	}
}

func TestTableIDeviceStructure(t *testing.T) {
	dev := TableIDevice()
	if dev.W() != 72 || dev.H() != 60 {
		t.Fatalf("device %dx%d", dev.W(), dev.H())
	}
	h := dev.Histogram()
	if h[fabric.BRAM] == 0 || h[fabric.DSP] == 0 || h[fabric.Clock] == 0 {
		t.Fatalf("missing resource kinds: %v", h)
	}
	// Clock-row interruption present in BRAM columns.
	if dev.KindAt(6, 15) != fabric.Clock {
		t.Fatalf("no clock interruption at (6,15): %v", dev.KindAt(6, 15))
	}
	if dev.KindAt(6, 0) != fabric.BRAM {
		t.Fatalf("BRAM column missing: %v", dev.KindAt(6, 0))
	}
}

func TestRunTableIQuick(t *testing.T) {
	res, err := RunTableI(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2 {
		t.Fatalf("runs = %d", res.Runs)
	}
	if res.With.Failures > 0 || res.Without.Failures > 0 {
		t.Fatalf("failures: with=%d without=%d", res.With.Failures, res.Without.Failures)
	}
	// The headline shape: alternatives never hurt utilization (with our
	// optimiser they strictly help on this workload).
	if res.With.Util.Mean < res.Without.Util.Mean {
		t.Fatalf("alternatives lowered utilization: %.3f vs %.3f",
			res.With.Util.Mean, res.Without.Util.Mean)
	}
	// Shapes in play: 8 modules -> ~32 with, 8 without.
	if res.Without.Shapes != 8 || res.With.Shapes < 24 {
		t.Fatalf("shape counts: with=%.1f without=%.1f", res.With.Shapes, res.Without.Shapes)
	}
	out := res.Format()
	for _, want := range []string{"IMPACT OF MODULE DESIGN ALTERNATIVES", "No design alternatives", "Design alternatives", "Change"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if res.TimeRatio() <= 0 {
		t.Fatal("time ratio not positive")
	}
}

func TestRunTableIProgress(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	var sb strings.Builder
	cfg.Progress = &sb
	if _, err := RunTableI(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "run  1/1") {
		t.Fatalf("progress output: %q", sb.String())
	}
}

func TestFig1(t *testing.T) {
	out := Fig1()
	if !strings.Contains(out, "5 design alternatives") {
		t.Fatalf("Fig1:\n%s", out)
	}
	if !strings.Contains(out, "CLB:18 BRAM:2") {
		t.Fatalf("Fig1 resources line missing:\n%s", out)
	}
}

func TestFig3(t *testing.T) {
	out, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "With design alternatives") ||
		!strings.Contains(out, "Without design alternatives") {
		t.Fatalf("Fig3 captions missing:\n%s", out)
	}
	if !strings.Contains(out, "A") {
		t.Fatal("Fig3 has no placed modules")
	}
}

func TestFig4(t *testing.T) {
	out, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range []string{"(a)", "(b)", "(c)", "(d)"} {
		if !strings.Contains(out, panel) {
			t.Fatalf("Fig4 missing panel %s:\n%s", panel, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Fatal("Fig4 anchor mask empty")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("Fig4 static mask missing")
	}
}

func TestFig5(t *testing.T) {
	out, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "With design alternatives") || !strings.Contains(out, "L") {
		t.Fatalf("Fig5 output:\n%s", out)
	}
}

func TestAlternativeCountSweepQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	rows, err := AlternativeCountSweep(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Arm.Util.Mean < rows[0].Arm.Util.Mean {
		t.Fatalf("more alternatives lowered utilization: %v", rows)
	}
	out := FormatRows("sweep", rows)
	if !strings.Contains(out, "1 alternatives") || !strings.Contains(out, "4 alternatives") {
		t.Fatalf("FormatRows:\n%s", out)
	}
}

func TestHeterogeneitySweepQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	rows, err := HeterogeneitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The homogeneous fabric offers strictly more anchors, so the same
	// workload never needs more rows there. (Utilization is not directly
	// comparable across the two: the heterogeneous region has fewer
	// placeable tiles per row in the denominator.)
	if rows[0].Arm.Height.Mean > rows[1].Arm.Height.Mean {
		t.Fatalf("homogeneous needed more rows than heterogeneous: %+v", rows)
	}
}

func TestMaskedResourcesComparisonQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	rows, err := MaskedResourcesComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	native, masked := rows[0].Arm, rows[1].Arm
	// Masking pays extra CLBs: the occupied extent must grow.
	if masked.Height.Mean <= native.Height.Mean {
		t.Fatalf("masking did not increase height: native=%.1f masked=%.1f",
			native.Height.Mean, masked.Height.Mean)
	}
}

func TestStrategySweepQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	cfg.Workload.NumModules = 6
	rows, err := StrategySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Arm.Failures > 0 {
			t.Fatalf("strategy %s failed placements", r.Label)
		}
	}
}

func TestBaselineComparisonQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	rows, err := BaselineComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // CP + 4 baselines
		t.Fatalf("rows = %d", len(rows))
	}
	cp := rows[0].Arm
	for _, r := range rows[1:] {
		if r.Arm.Failures == 0 && cp.Util.Mean < r.Arm.Util.Mean-1e-9 {
			t.Fatalf("CP (%.3f) beaten by %s (%.3f)", cp.Util.Mean, r.Label, r.Arm.Util.Mean)
		}
	}
}

func TestOnlineComparisonQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	stream := online.StreamConfig{Tasks: 40, MeanInterarrival: 2, MeanDuration: 80}
	stream.Library.CLBMin, stream.Library.CLBMax = 10, 50
	stream.Library.BRAMMax = 3
	stream.Library.Alternatives = 4
	stream.Library.NumModules = 1
	rows, err := OnlineComparison(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]OnlineRow{}
	for _, r := range rows {
		byName[r.Label] = r
	}
	// 1D slots must not beat 2D first-fit on service level.
	if byName["1d-slots"].Service.Mean > byName["first-fit"].Service.Mean {
		t.Fatalf("1d slots beat 2D placement: %+v", rows)
	}
	out := FormatOnlineRows("t", rows)
	if !strings.Contains(out, "1d-slots") || !strings.Contains(out, "Service Level") {
		t.Fatalf("FormatOnlineRows:\n%s", out)
	}
}

func TestRunTableICountsFailures(t *testing.T) {
	// A region far too small for the workload: placements exist for
	// individual modules but not jointly, so runs count as failures.
	cfg := quickCfg()
	cfg.Runs = 1
	cfg.Workload = workload.Config{
		NumModules: 6, CLBMin: 30, CLBMax: 40, NoBRAM: true, Alternatives: 2,
	}
	cfg.Region = fabric.Homogeneous(12, 14).FullRegion()
	res, err := RunTableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.With.Failures == 0 || res.Without.Failures == 0 {
		t.Fatalf("expected failures on an overfull region: %+v / %+v",
			res.With.Failures, res.Without.Failures)
	}
	// Format still renders with zero samples.
	if res.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestScheduleComparisonQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	cfg.StallNodes = 200
	rows, err := ScheduleComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fresh, persistent := rows[0], rows[1]
	// Persistent planning never reconfigures survivors: its switch cost
	// is at most fresh's on the same schedules.
	if persistent.SwitchMS.Mean > fresh.SwitchMS.Mean+1e-9 {
		t.Fatalf("persistent switch %.3fms > fresh %.3fms",
			persistent.SwitchMS.Mean, fresh.SwitchMS.Mean)
	}
	out := FormatScheduleRows("t", rows)
	if !strings.Contains(out, "persistent") || !strings.Contains(out, "Reconfig Overhead") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRelocationComparisonQuick(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1
	cfg.Workload.NumModules = 5
	rows, err := RelocationComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	native, masked := rows[0], rows[1]
	// Masked CLB-only modules are more relocatable: higher one-bitstream
	// coverage and more anchors.
	if masked.Coverage.Mean < native.Coverage.Mean {
		t.Fatalf("masked coverage %.2f < native %.2f", masked.Coverage.Mean, native.Coverage.Mean)
	}
	if masked.Anchors.Mean <= native.Anchors.Mean {
		t.Fatalf("masked anchors %.1f <= native %.1f", masked.Anchors.Mean, native.Anchors.Mean)
	}
	out := FormatRelocationRows("t", rows)
	if !strings.Contains(out, "One-Bitstream") {
		t.Fatalf("format:\n%s", out)
	}
}
