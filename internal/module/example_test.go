package module_test

import (
	"fmt"

	"repro/internal/module"
)

// ExampleGenerateAlternatives builds the paper's default family of four
// design alternatives for one resource demand.
func ExampleGenerateAlternatives() {
	m, err := module.GenerateAlternatives("filter", module.Demand{CLB: 12, BRAM: 2},
		module.AlternativeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.NumShapes(), "alternatives")
	for i, s := range m.Shapes() {
		fmt.Printf("shape %d: %dx%d, %s\n", i, s.W(), s.H(), s.Histogram())
	}
	// Output:
	// 4 alternatives
	// shape 0: 4x4, CLB:12 BRAM:2
	// shape 1: 4x4, CLB:12 BRAM:2
	// shape 2: 4x4, CLB:12 BRAM:2
	// shape 3: 5x3, CLB:12 BRAM:2
}

// ExampleSynthesize lays out a demand at a given width with the
// dedicated column on the left.
func ExampleSynthesize() {
	s, err := module.Synthesize(module.Demand{CLB: 6, BRAM: 2}, 3, module.DedicatedLeft)
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output:
	// .cc
	// bcc
	// bcc
}
