package online

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/grid"
)

func TestNewStateManagerSelection(t *testing.T) {
	region := fabric.Homogeneous(8, 8).FullRegion()
	for _, name := range SessionManagers() {
		st, err := NewState(region, StateConfig{Manager: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.ManagerName() == "" {
			t.Fatalf("%s: empty manager name", name)
		}
	}
	if _, err := NewState(region, StateConfig{Manager: "1d-slots"}); err == nil {
		t.Fatal("slot manager accepted for a session")
	}
	if _, err := NewState(nil, StateConfig{}); err == nil {
		t.Fatal("nil region accepted")
	}
}

func TestStatePlaceReleaseLifecycle(t *testing.T) {
	region := fabric.Homogeneous(8, 8).FullRegion()
	st, err := NewState(region, StateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.Place(1, clbModule("a", 4, 4))
	if err != nil || !out.Placed || out.Replanned {
		t.Fatalf("place: %+v, %v", out, err)
	}
	if out.Reconfig <= 0 {
		t.Fatalf("placement priced at %v", out.Reconfig)
	}
	if _, err := st.Place(1, clbModule("dup", 2, 2)); err == nil {
		t.Fatal("duplicate id accepted")
	}
	stats := st.Stats()
	if stats.Residents != 1 || stats.OccupiedTiles != 16 || stats.Placed != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Utilization <= 0 {
		t.Fatalf("utilization: %+v", stats)
	}
	if !st.Release(1) {
		t.Fatal("release of resident failed")
	}
	if st.Release(1) {
		t.Fatal("double release reported success")
	}
	// The freed space is reusable, both in the shadow and the manager.
	if out, err = st.Place(2, clbModule("b", 8, 8)); err != nil || !out.Placed {
		t.Fatalf("region not fully reusable after release: %+v, %v", out, err)
	}
}

func TestStateCapacityRejectionIsNotAnError(t *testing.T) {
	region := fabric.Homogeneous(4, 4).FullRegion()
	st, err := NewState(region, StateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := st.Place(1, clbModule("a", 4, 4)); err != nil || !out.Placed {
		t.Fatalf("first: %+v, %v", out, err)
	}
	out, err := st.Place(2, clbModule("b", 2, 2))
	if err != nil {
		t.Fatalf("capacity rejection errored: %v", err)
	}
	if out.Placed {
		t.Fatalf("placed into a full region: %+v", out)
	}
	if st.Stats().Rejected != 1 {
		t.Fatalf("stats: %+v", st.Stats())
	}
}

// TestStateReplanAdmitsBlockedArrival fragments a 16x4 strip (two 4x4
// holes), offers an 8x4 module greedy placement cannot site, and
// expects the CP replan to relocate residents and admit it.
func TestStateReplanAdmitsBlockedArrival(t *testing.T) {
	region := fabric.Homogeneous(16, 4).FullRegion()
	st, err := NewState(region, StateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for id := TaskID(1); id <= 4; id++ {
		if out, err := st.Place(id, clbModule("m", 4, 4)); err != nil || !out.Placed {
			t.Fatalf("seed %d: %+v, %v", id, out, err)
		}
	}
	st.Release(2)
	st.Release(4)

	out, err := st.Place(5, clbModule("wide", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Placed || !out.Replanned {
		t.Fatalf("replan did not admit the blocked arrival: %+v", out)
	}
	if len(out.Moves) == 0 {
		t.Fatalf("admission without relocations cannot happen here: %+v", out)
	}
	for _, mv := range out.Moves {
		if mv.Frames <= 0 || mv.Reconfig <= 0 {
			t.Fatalf("unpriced move: %+v", mv)
		}
	}
	stats := st.Stats()
	if stats.Replans != 1 || stats.Moves != len(out.Moves) || stats.Residents != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	// The shadow residency must be disjoint and complete: 16+16+32 tiles
	// on a 64-tile region means full occupancy.
	if stats.OccupiedTiles != 64 || stats.Utilization != 1 {
		t.Fatalf("layout not tight after replan: %+v", stats)
	}
	// The re-seeded manager must agree with the shadow: nothing fits.
	if out, err := st.Place(6, clbModule("x", 1, 1)); err != nil || out.Placed {
		t.Fatalf("manager out of sync after replan: %+v, %v", out, err)
	}
}

// TestStateDefragLowersFragmentation builds an L-shaped free space
// (fragmentation 0.5) and expects a defrag pass to compact the layout
// and reduce the metric.
func TestStateDefragLowersFragmentation(t *testing.T) {
	region := fabric.Homogeneous(8, 12).FullRegion()
	st, err := NewState(region, StateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// First-fit layout: 1 = 8x4@(0,0), 2 = 4x4@(0,4), 3 = 4x4@(4,4),
	// 4 = 4x4@(0,8). Releasing 2 leaves two 4x4 holes at (0,4) and
	// (4,8) within the occupied span.
	specs := []struct {
		id   TaskID
		w, h int
	}{{1, 8, 4}, {2, 4, 4}, {3, 4, 4}, {4, 4, 4}}
	for _, sp := range specs {
		if out, err := st.Place(sp.id, clbModule("m", sp.w, sp.h)); err != nil || !out.Placed {
			t.Fatalf("seed %d: %+v, %v", sp.id, out, err)
		}
	}
	st.Release(2)

	out, err := st.Defrag()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Moves) == 0 {
		t.Fatalf("no compaction moves: %+v", out)
	}
	if out.FragAfter >= out.FragBefore {
		t.Fatalf("defrag did not lower fragmentation: %+v", out)
	}
	if out.Reconfig <= 0 {
		t.Fatalf("unpriced defrag: %+v", out)
	}
	stats := st.Stats()
	if stats.Defrags != 1 || stats.Residents != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	// Every resident must still hold a valid, disjoint placement.
	occ := grid.NewBitmap(region.W(), region.H())
	for _, r := range st.Residents() {
		pts, err := ValidatePlacement(region, occ, r.Module, Placement{Shape: r.Shape, At: r.At})
		if err != nil {
			t.Fatalf("resident %d invalid after defrag: %v", r.ID, err)
		}
		occ.SetPoints(pts, true)
	}
	// Compacted 8x8 block: the freed 8x4 strip on top is usable again.
	if out, err := st.Place(5, clbModule("top", 8, 4)); err != nil || !out.Placed || out.Replanned {
		t.Fatalf("compacted space not greedily usable: %+v, %v", out, err)
	}
}

// TestStateDefragEmptyAndTight covers the no-op paths: an empty session
// and an already-tight layout both return an empty outcome.
func TestStateDefragEmptyAndTight(t *testing.T) {
	region := fabric.Homogeneous(8, 8).FullRegion()
	st, err := NewState(region, StateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := st.Defrag(); err != nil || len(out.Moves) != 0 {
		t.Fatalf("empty session: %+v, %v", out, err)
	}
	if _, err := st.Place(1, clbModule("a", 8, 4)); err != nil {
		t.Fatal(err)
	}
	out, err := st.Defrag()
	if err != nil || len(out.Moves) != 0 {
		t.Fatalf("tight layout: %+v, %v", out, err)
	}
}

func TestSlot1DPreplaceKeepsSlotBookkeeping(t *testing.T) {
	region := fabric.Homogeneous(16, 8).FullRegion()
	m := &Slot1D{SlotWidth: 4}
	m.Reset(region)
	mod := clbModule("a", 6, 4)
	// Straddles slots 1 and 2 (x in [5, 11)).
	if !m.Preplace(1, mod, Placement{Shape: 0, At: grid.Pt(5, 0)}) {
		t.Fatal("preplace refused a valid placement")
	}
	// Slots 1 and 2 are reserved: a 4-wide module must avoid them.
	p, ok := m.TryPlace(Task{ID: 2, Module: clbModule("b", 4, 8)})
	if !ok {
		t.Fatal("free slots not usable after preplace")
	}
	if p.At.X >= 4 && p.At.X < 12 {
		t.Fatalf("placement %v landed in reserved slots", p)
	}
	m.Release(1)
	// All slots free again.
	if _, ok := m.TryPlace(Task{ID: 3, Module: clbModule("c", 8, 8)}); !ok {
		t.Fatal("slots not released")
	}
}
