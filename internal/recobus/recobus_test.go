package recobus

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

const regionText = `
# demo partial region
region demo 24 16
bramcols 5 17
dspcols 11
clockrows 8
static 0 12 24 4
bus 0 8
`

const modulesText = `
module filter
demand 12 2 0
alternatives 4

module ctrl          # explicit layouts
shape
rect 0 0 3 2 CLB
end
shape
rect 0 0 2 3 CLB
end
`

func TestParseRegion(t *testing.T) {
	spec, err := ParseRegion(strings.NewReader(regionText))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fabric.Name != "demo" || spec.Fabric.W != 24 || spec.Fabric.H != 16 {
		t.Fatalf("fabric: %+v", spec.Fabric)
	}
	if len(spec.Fabric.BRAMColumns) != 2 || spec.Fabric.BRAMColumns[1] != 17 {
		t.Fatalf("bram cols: %v", spec.Fabric.BRAMColumns)
	}
	if spec.Fabric.ClockRowPeriod != 8 {
		t.Fatalf("clock rows: %d", spec.Fabric.ClockRowPeriod)
	}
	if len(spec.Statics) != 1 || spec.Statics[0] != grid.RectXYWH(0, 12, 24, 4) {
		t.Fatalf("statics: %v", spec.Statics)
	}
	if len(spec.BusRows) != 2 || spec.BusRows[0] != 0 || spec.BusRows[1] != 8 {
		t.Fatalf("bus rows: %v", spec.BusRows)
	}
	region, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if region.KindAt(0, 12) != fabric.Static {
		t.Fatal("static rect not masked")
	}
	if region.KindAt(5, 0) != fabric.BRAM {
		t.Fatal("BRAM column missing")
	}
}

func TestParseRegionErrors(t *testing.T) {
	cases := map[string]string{
		"missing region": "bramcols 2\n",
		"bad directive":  "region r 4 4\nfrobnicate 1\n",
		"bad dims":       "region r x 4\n",
		"bad static":     "region r 4 4\nstatic 1 2\n",
		"bad ints":       "region r 4 4\nbramcols a\n",
		"empty cols":     "region r 4 4\nbramcols\n",
	}
	for name, text := range cases {
		if _, err := ParseRegion(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Bus row out of range is caught at Build.
	spec, err := ParseRegion(strings.NewReader("region r 4 4\nbus 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(); err == nil {
		t.Error("out-of-range bus row accepted")
	}
}

func TestRegionRoundTrip(t *testing.T) {
	spec, err := ParseRegion(strings.NewReader(regionText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRegion(&buf, spec); err != nil {
		t.Fatal(err)
	}
	spec2, err := ParseRegion(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	r1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := spec2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatal("region round trip changed the fabric")
	}
}

func TestParseModules(t *testing.T) {
	mods, err := ParseModules(strings.NewReader(modulesText))
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 {
		t.Fatalf("modules = %d", len(mods))
	}
	if mods[0].Name() != "filter" || mods[0].NumShapes() != 4 {
		t.Fatalf("filter: %v", mods[0])
	}
	h := mods[0].Shape(0).Histogram()
	if h[fabric.CLB] != 12 || h[fabric.BRAM] != 2 {
		t.Fatalf("filter resources: %v", h)
	}
	if mods[1].Name() != "ctrl" || mods[1].NumShapes() != 2 {
		t.Fatalf("ctrl: %v", mods[1])
	}
	if mods[1].Shape(0).W() != 3 || mods[1].Shape(1).W() != 2 {
		t.Fatal("ctrl shapes wrong")
	}
}

func TestParseModulesErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no body":            "module m\n",
		"demand outside":     "demand 1 0 0\n",
		"mixed":              "module m\ndemand 4 0 0\nshape\ntile 0 0 CLB\nend\n",
		"unterminated shape": "module m\nshape\ntile 0 0 CLB\n",
		"nested shape":       "module m\nshape\nshape\n",
		"tile outside":       "module m\ntile 0 0 CLB\n",
		"bad kind":           "module m\nshape\ntile 0 0 FOO\nend\n",
		"bad rect":           "module m\nshape\nrect 0 0 1 CLB\nend\n",
		"end outside":        "module m\nend\n",
		"unknown":            "module m\nwibble\n",
	}
	for name, text := range cases {
		if _, err := ParseModules(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestModulesRoundTrip(t *testing.T) {
	mods, err := ParseModules(strings.NewReader(modulesText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModules(&buf, mods); err != nil {
		t.Fatal(err)
	}
	mods2, err := ParseModules(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(mods2) != len(mods) {
		t.Fatal("module count changed")
	}
	for i := range mods {
		if mods[i].NumShapes() != mods2[i].NumShapes() {
			t.Fatalf("module %d shape count changed", i)
		}
		for si := range mods[i].Shapes() {
			if !mods[i].Shape(si).Equal(mods2[i].Shape(si)) {
				t.Fatalf("module %d shape %d changed", i, si)
			}
		}
	}
}

func TestFlowEndToEnd(t *testing.T) {
	flow, err := LoadFlow(strings.NewReader(regionText), strings.NewReader(modulesText))
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Place(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("flow found no placement")
	}
	// Bus constraint: every module crosses row 0 or row 8.
	for _, p := range res.Placements {
		b := p.Bounds()
		if !(b.MinY <= 0 && 0 < b.MaxY) && !(b.MinY <= 8 && 8 < b.MaxY) {
			t.Fatalf("%v does not attach to a bus row", p)
		}
	}
	bs, err := flow.Assemble(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("bitstreams = %d", len(bs))
	}
	for _, b := range bs {
		if b.Frames <= 0 || b.Bytes <= 0 || b.ReconfigTime <= 0 {
			t.Fatalf("degenerate bitstream: %v", b)
		}
	}
	if TotalReconfigTime(bs) <= bs[0].ReconfigTime {
		t.Fatal("total reconfig time wrong")
	}
}

func TestAssembleUnplaced(t *testing.T) {
	region := fabric.Homogeneous(4, 4).FullRegion()
	if _, err := Assemble(region, &core.Result{}, fabric.DefaultFrameModel()); err == nil {
		t.Fatal("assembled an unplaced result")
	}
	bad := fabric.FrameModel{}
	if _, err := Assemble(region, &core.Result{Found: true}, bad); err == nil {
		t.Fatal("invalid frame model accepted")
	}
}

func TestBitstreamEncodeDecode(t *testing.T) {
	b := Bitstream{Module: "filter", ShapeIndex: 2, X: 5, Y: 7, Frames: 10, Bytes: 40}
	blob := b.Encode()
	got, err := DecodeBitstream(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip: %+v != %+v", got, b)
	}
	if _, err := DecodeBitstream(blob[:8]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	blob[0] ^= 0xff
	if _, err := DecodeBitstream(blob); err == nil {
		t.Fatal("bad magic accepted")
	}
	if !strings.Contains(b.String(), "filter@(5,7)") {
		t.Fatalf("String = %q", b.String())
	}
}

func TestRelocationClassesHomogeneous(t *testing.T) {
	region := fabric.Homogeneous(8, 6).FullRegion()
	s := module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.CLB},
		{At: grid.Pt(1, 0), Kind: fabric.CLB},
	})
	classes := RelocationClasses(region, s)
	if len(classes) != 1 {
		t.Fatalf("homogeneous fabric should give one class, got %d", len(classes))
	}
	sum := SummarizeRelocation(region, s)
	if sum.Anchors != 7*6 || sum.Ratio() != 1.0 {
		t.Fatalf("summary: %v", sum)
	}
}

func TestRelocationClassesHeterogeneous(t *testing.T) {
	// A clock-interrupted BRAM column splits BRAM-adjacent anchors into
	// multiple signatures.
	spec := fabric.Spec{Name: "rc", W: 8, H: 8, BRAMColumns: []int{3}, ClockRowPeriod: 4}
	region := spec.MustBuild().FullRegion()
	s := module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.BRAM},
		{At: grid.Pt(1, 0), Kind: fabric.CLB},
		{At: grid.Pt(0, 1), Kind: fabric.BRAM},
		{At: grid.Pt(1, 1), Kind: fabric.CLB},
	})
	classes := RelocationClasses(region, s)
	total := 0
	for _, c := range classes {
		total += len(c.Anchors)
		// All anchors of a class really share a signature.
		for _, a := range c.Anchors {
			sig := ""
			for dy := 0; dy < s.H(); dy++ {
				for dx := 0; dx < s.W(); dx++ {
					sig += string(region.KindAt(a.X+dx, a.Y+dy).Rune())
				}
			}
			if sig != c.Signature {
				t.Fatalf("anchor %v signature mismatch", a)
			}
		}
	}
	sum := SummarizeRelocation(region, s)
	if sum.Anchors != total || sum.Classes != len(classes) {
		t.Fatalf("summary inconsistent: %v vs %d classes %d anchors", sum, len(classes), total)
	}
	// Classes sorted largest first.
	for i := 1; i < len(classes); i++ {
		if len(classes[i].Anchors) > len(classes[i-1].Anchors) {
			t.Fatal("classes not sorted by size")
		}
	}
}

func TestRelocationMaskingCollapsesClasses(t *testing.T) {
	// The [9] trade-off: a module using the BRAM column has fewer
	// relocation options than its masked (CLB-only) equivalent on the
	// same fabric.
	spec := fabric.Spec{Name: "rc2", W: 12, H: 8, BRAMColumns: []int{5}, ClockRowPeriod: 4}
	region := spec.MustBuild().FullRegion()
	native := module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.BRAM},
		{At: grid.Pt(1, 0), Kind: fabric.CLB},
	})
	masked := module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.CLB},
		{At: grid.Pt(1, 0), Kind: fabric.CLB},
	})
	nativeSum := SummarizeRelocation(region, native)
	maskedSum := SummarizeRelocation(region, masked)
	if maskedSum.Anchors <= nativeSum.Anchors {
		t.Fatalf("masked module should have more anchors: %v vs %v", maskedSum, nativeSum)
	}
	if maskedSum.Ratio() < nativeSum.Ratio() {
		t.Fatalf("masked module should be at least as relocatable: %v vs %v", maskedSum, nativeSum)
	}
	if nativeSum.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestRelocationNoAnchors(t *testing.T) {
	region := fabric.Homogeneous(4, 4).FullRegion()
	s := module.MustShape([]module.Tile{{At: grid.Pt(0, 0), Kind: fabric.DSP}})
	if got := len(RelocationClasses(region, s)); got != 0 {
		t.Fatalf("classes = %d for unplaceable shape", got)
	}
	if SummarizeRelocation(region, s).Ratio() != 0 {
		t.Fatal("ratio of no anchors should be 0")
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	flow, err := LoadFlow(strings.NewReader(regionText), strings.NewReader(modulesText))
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Place(core.Options{})
	if err != nil || !res.Found {
		t.Fatalf("place: %v %v", err, res)
	}
	var buf bytes.Buffer
	if err := WritePlacement(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlacement(&buf, flow.Region, flow.Modules)
	if err != nil {
		t.Fatal(err)
	}
	if back.Height != res.Height || len(back.Placements) != len(res.Placements) {
		t.Fatalf("round trip changed result: %v vs %v", back, res)
	}
	for i := range res.Placements {
		if res.Placements[i].At != back.Placements[i].At ||
			res.Placements[i].ShapeIndex != back.Placements[i].ShapeIndex {
			t.Fatalf("placement %d changed", i)
		}
	}
}

func TestWritePlacementUnplaced(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlacement(&buf, &core.Result{}); err == nil {
		t.Fatal("unplaced result written")
	}
}

func TestParsePlacementErrors(t *testing.T) {
	flow, err := LoadFlow(strings.NewReader(regionText), strings.NewReader(modulesText))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"bad directive":  "placed filter 0 0 0\n",
		"unknown module": "place ghost 0 0 0\n",
		"bad shape":      "place filter 9 0 0\n",
		"bad ints":       "place filter x 0 0\n",
		"duplicate":      "place filter 0 0 0\nplace filter 0 6 0\nplace ctrl 0 12 0\n",
		"incomplete":     "place filter 0 0 0\n",
		"overlap":        "place filter 0 4 0\nplace ctrl 0 5 0\n",
		"off region":     "place filter 0 23 0\nplace ctrl 0 0 0\n",
	}
	for name, text := range cases {
		if _, err := ParsePlacement(strings.NewReader(text), flow.Region, flow.Modules); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
