package csp

import (
	"errors"
	"testing"
)

func TestChannelEqForward(t *testing.T) {
	st := NewStore()
	b := st.NewVarRange("b", 0, 1)
	x := st.NewVarRange("x", 0, 5)
	ChannelEq(st, b, x, 3)

	// x = 3 forces b = 1.
	if err := st.Assign(x, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if !b.Assigned() || b.Value() != 1 {
		t.Fatalf("b = %v, want 1", b)
	}
}

func TestChannelEqForwardNegative(t *testing.T) {
	st := NewStore()
	b := st.NewVarRange("b", 0, 1)
	x := st.NewVarRange("x", 0, 5)
	ChannelEq(st, b, x, 3)
	// Removing 3 from x forces b = 0.
	if err := st.Remove(x, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if !b.Assigned() || b.Value() != 0 {
		t.Fatalf("b = %v, want 0", b)
	}
}

func TestChannelEqBackward(t *testing.T) {
	st := NewStore()
	b := st.NewVarRange("b", 0, 1)
	x := st.NewVarRange("x", 0, 5)
	ChannelEq(st, b, x, 3)
	if err := st.Assign(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if !x.Assigned() || x.Value() != 3 {
		t.Fatalf("x = %v, want 3", x)
	}

	st2 := NewStore()
	b2 := st2.NewVarRange("b", 0, 1)
	x2 := st2.NewVarRange("x", 0, 5)
	ChannelEq(st2, b2, x2, 3)
	if err := st2.Assign(b2, 0); err != nil {
		t.Fatal(err)
	}
	if err := st2.Propagate(); err != nil {
		t.Fatal(err)
	}
	if x2.Domain().Contains(3) {
		t.Fatal("x still contains the channelled value")
	}
}

func TestChannelEqConflict(t *testing.T) {
	st := NewStore()
	b := st.NewVarRange("b", 1, 1) // forced true
	x := st.NewVarRange("x", 0, 5)
	ChannelEq(st, b, x, 3)
	if err := st.Remove(x, 3); err != nil && !errors.Is(err, ErrInconsistent) {
		t.Fatal(err)
	}
	if err := st.Propagate(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want inconsistency", err)
	}
}

func TestChannelEqPanicsOnWideBoolean(t *testing.T) {
	st := NewStore()
	b := st.NewVarRange("b", 0, 2)
	x := st.NewVarRange("x", 0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ChannelEq(st, b, x, 1)
}

func TestCountConstraint(t *testing.T) {
	// Three variables over {0,1,2}; require exactly two of them = 1.
	st := NewStore()
	vars := []*Var{
		st.NewVarRange("a", 0, 2),
		st.NewVarRange("b", 0, 2),
		st.NewVarRange("c", 0, 2),
	}
	total := st.NewVarRange("t", 2, 2)
	Count(st, total, 1, vars...)
	res, err := Solve(st, vars, Options{}, func(s *Store) bool {
		ones := 0
		for _, v := range vars {
			if v.Value() == 1 {
				ones++
			}
		}
		if ones != 2 {
			t.Fatalf("solution with %d ones", ones)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Choose 2 of 3 positions for the ones (3 ways), remaining var in
	// {0,2} (2 ways): 6 solutions.
	if res.Solutions != 6 || !res.Complete {
		t.Fatalf("solutions = %d, want 6", res.Solutions)
	}
}

func TestCountPanicsOnEmpty(t *testing.T) {
	st := NewStore()
	total := st.NewVarRange("t", 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Count(st, total, 1)
}
