// Package netlist models the front end the paper's flow starts from:
// partial modules specified as unplaced, unrouted netlists. A netlist is
// a bag of technology-mapped cells (LUTs, flip-flops, block RAMs, DSP
// slices) connected by nets; packing estimates the tile demand the
// netlist needs on the fabric, from which design alternatives are
// synthesised. The placer itself never inspects the netlist — exactly as
// in the paper, where only the module bounding shapes reach the
// constraint model.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/module"
)

// CellKind is a technology-mapped primitive type.
type CellKind uint8

// Cell kinds.
const (
	LUT CellKind = iota
	FF
	BRAMCell
	DSPCell
	numCellKinds
)

var cellKindNames = [numCellKinds]string{"LUT", "FF", "BRAM", "DSP"}

// String returns the canonical name.
func (k CellKind) String() string {
	if k < numCellKinds {
		return cellKindNames[k]
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// ParseCellKind converts a canonical name back to a kind.
func ParseCellKind(s string) (CellKind, error) {
	for k := CellKind(0); k < numCellKinds; k++ {
		if cellKindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("netlist: unknown cell kind %q", s)
}

// Cell is one primitive instance.
type Cell struct {
	Name string
	Kind CellKind
}

// Net connects two or more cells (by name).
type Net struct {
	Name string
	Pins []string
}

// Netlist is a named set of cells and nets.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net
}

// Validate checks structural sanity: non-empty name and cells, unique
// cell and net names, every pin referencing a cell, nets with at least
// two pins.
func (n *Netlist) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("netlist: empty name")
	}
	if len(n.Cells) == 0 {
		return fmt.Errorf("netlist %s: no cells", n.Name)
	}
	cells := make(map[string]bool, len(n.Cells))
	for _, c := range n.Cells {
		if c.Name == "" {
			return fmt.Errorf("netlist %s: unnamed cell", n.Name)
		}
		if c.Kind >= numCellKinds {
			return fmt.Errorf("netlist %s: cell %s has invalid kind", n.Name, c.Name)
		}
		if cells[c.Name] {
			return fmt.Errorf("netlist %s: duplicate cell %s", n.Name, c.Name)
		}
		cells[c.Name] = true
	}
	nets := make(map[string]bool, len(n.Nets))
	for _, net := range n.Nets {
		if net.Name == "" {
			return fmt.Errorf("netlist %s: unnamed net", n.Name)
		}
		if nets[net.Name] {
			return fmt.Errorf("netlist %s: duplicate net %s", n.Name, net.Name)
		}
		nets[net.Name] = true
		if len(net.Pins) < 2 {
			return fmt.Errorf("netlist %s: net %s has %d pins, need >= 2", n.Name, net.Name, len(net.Pins))
		}
		for _, p := range net.Pins {
			if !cells[p] {
				return fmt.Errorf("netlist %s: net %s references unknown cell %s", n.Name, net.Name, p)
			}
		}
	}
	return nil
}

// Count returns the number of cells of kind k.
func (n *Netlist) Count(k CellKind) int {
	c := 0
	for _, cell := range n.Cells {
		if cell.Kind == k {
			c++
		}
	}
	return c
}

// AvgFanout returns the mean pins-per-net (0 for netless designs).
func (n *Netlist) AvgFanout() float64 {
	if len(n.Nets) == 0 {
		return 0
	}
	pins := 0
	for _, net := range n.Nets {
		pins += len(net.Pins)
	}
	return float64(pins) / float64(len(n.Nets))
}

// PackingTarget describes the fabric's logic capacity per CLB tile.
type PackingTarget struct {
	// LUTsPerCLB and FFsPerCLB are the LUT and flip-flop capacity of
	// one CLB tile.
	LUTsPerCLB int
	FFsPerCLB  int
}

// DefaultPackingTarget mirrors a Virtex-class CLB: two slices of four
// LUT/FF pairs each.
func DefaultPackingTarget() PackingTarget {
	return PackingTarget{LUTsPerCLB: 8, FFsPerCLB: 8}
}

// Pack estimates the tile demand of a netlist: CLBs sized by the binding
// resource (LUTs or FFs), plus one dedicated tile per BRAM/DSP cell.
func Pack(n *Netlist, t PackingTarget) (module.Demand, error) {
	if err := n.Validate(); err != nil {
		return module.Demand{}, err
	}
	if t.LUTsPerCLB <= 0 || t.FFsPerCLB <= 0 {
		return module.Demand{}, fmt.Errorf("netlist: invalid packing target %+v", t)
	}
	clbByLUT := ceilDiv(n.Count(LUT), t.LUTsPerCLB)
	clbByFF := ceilDiv(n.Count(FF), t.FFsPerCLB)
	d := module.Demand{
		CLB:  maxInt(clbByLUT, clbByFF),
		BRAM: n.Count(BRAMCell),
		DSP:  n.Count(DSPCell),
	}
	if d.Total() == 0 {
		return module.Demand{}, fmt.Errorf("netlist %s: packs to zero tiles", n.Name)
	}
	return d, nil
}

// ToModule packs the netlist and synthesises a module with design
// alternatives for its demand.
func ToModule(n *Netlist, t PackingTarget, opts module.AlternativeOptions) (*module.Module, error) {
	d, err := Pack(n, t)
	if err != nil {
		return nil, err
	}
	return module.GenerateAlternatives(n.Name, d, opts)
}

// Parse reads the textual netlist format:
//
//	netlist <name>
//	cell <name> <LUT|FF|BRAM|DSP>
//	net <name> <cell> <cell> [...]
//
// Multiple netlists per stream are allowed; '#' starts a comment.
func Parse(r io.Reader) ([]*Netlist, error) {
	var out []*Netlist
	var cur *Netlist
	sc := bufio.NewScanner(r)
	lineNo := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(); err != nil {
			return err
		}
		out = append(out, cur)
		cur = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "netlist":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: want 'netlist <name>'", lineNo)
			}
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Netlist{Name: fields[1]}
		case "cell":
			if cur == nil {
				return nil, fmt.Errorf("netlist: line %d: cell outside netlist", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("netlist: line %d: want 'cell <name> <kind>'", lineNo)
			}
			k, err := ParseCellKind(fields[2])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
			cur.Cells = append(cur.Cells, Cell{Name: fields[1], Kind: k})
		case "net":
			if cur == nil {
				return nil, fmt.Errorf("netlist: line %d: net outside netlist", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: line %d: want 'net <name> <cell> <cell>...'", lineNo)
			}
			cur.Nets = append(cur.Nets, Net{Name: fields[1], Pins: fields[2:]})
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("netlist: stream defines no netlists")
	}
	return out, nil
}

// Write emits netlists in the format Parse reads.
func Write(w io.Writer, nls []*Netlist) error {
	var sb strings.Builder
	for _, n := range nls {
		fmt.Fprintf(&sb, "netlist %s\n", n.Name)
		for _, c := range n.Cells {
			fmt.Fprintf(&sb, "cell %s %s\n", c.Name, c.Kind)
		}
		for _, net := range n.Nets {
			fmt.Fprintf(&sb, "net %s %s\n", net.Name, strings.Join(net.Pins, " "))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
