// Package novalidator is a fixture: a request boundary with numeric
// fields and no Validate method at all. A decoy Validate on another
// receiver type must not rescue it.
package novalidator

import "fmt"

// RequestOptions has knobs but nothing validates them.
type RequestOptions struct { // want `RequestOptions has numeric fields \(StallNodes, Workers\) but no Validate method`
	StallNodes int64
	Workers    int
}

// Summary is a decoy carrying the package's only Validate method.
type Summary struct {
	Total int
}

// Validate checks the summary, not the options.
func (s *Summary) Validate() error {
	if s.Total < 0 {
		return fmt.Errorf("negative total")
	}
	return nil
}
