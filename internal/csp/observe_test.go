package csp

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// eventLog is a test Recorder capturing every event.
type eventLog struct {
	events []obs.Event
}

func (l *eventLog) Record(e obs.Event) { l.events = append(l.events, e) }

func (l *eventLog) count(k obs.EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestSolveEmitsEvents(t *testing.T) {
	log := &eventLog{}
	st := NewStore()
	q := postQueens(st, 6)
	res, err := Solve(st, q, Options{Recorder: log}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if got := log.count(obs.KindSolution); got != res.Solutions {
		t.Errorf("solution events = %d, want %d", got, res.Solutions)
	}
	if got := int64(log.count(obs.KindBacktrack)); got != res.Backtracks {
		t.Errorf("backtrack events = %d, want %d", got, res.Backtracks)
	}
	if got := int64(log.count(obs.KindPropagate)); got != res.Propagations {
		t.Errorf("propagate events = %d, want %d", got, res.Propagations)
	}
	if log.count(obs.KindBranch) == 0 || log.count(obs.KindPrune) == 0 {
		t.Error("expected branch and prune events")
	}
	// Prune events from queens propagation must be attributed.
	attributed := false
	for _, e := range log.events {
		if e.Kind == obs.KindPrune && e.Prop == "csp.not-equal" {
			attributed = true
			break
		}
	}
	if !attributed {
		t.Error("no prune event attributed to csp.not-equal")
	}
	// The recorder is uninstalled after the search.
	if st.Recorder() != nil {
		t.Error("recorder left installed on store")
	}
}

func TestSolveCountsWithoutRecorder(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 6)
	res, err := Solve(st, q, Options{}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Backtracks == 0 || res.Propagations == 0 {
		t.Fatalf("counters must be populated without a recorder: %+v", res)
	}
	if res.Reason != StopExhausted {
		t.Fatalf("reason = %v, want exhausted", res.Reason)
	}
}

func TestSolveStopReasons(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 8)
	res, err := Solve(st, q, Options{MaxSolutions: 2}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopCut {
		t.Errorf("MaxSolutions reason = %v, want cut", res.Reason)
	}

	st2 := NewStore()
	q2 := postQueens(st2, 10)
	res2, err := Solve(st2, q2, Options{Deadline: time.Now().Add(-time.Second)}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reason != StopTimeout {
		t.Errorf("deadline reason = %v, want timeout", res2.Reason)
	}
}

func TestMinimizeStopReasonDistinguishesCauses(t *testing.T) {
	// Proved optimal.
	st := NewStore()
	q := postQueens(st, 6)
	res, err := Minimize(st, q, q[0], Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopExhausted || !res.Optimal {
		t.Errorf("proved run: reason=%v optimal=%v", res.Reason, res.Optimal)
	}

	// Stalled: descending values make the first incumbent poor, so the
	// run improves slowly and a 1-node stall budget trips quickly.
	st2 := NewStore()
	q2 := postQueens(st2, 8)
	res2, err := Minimize(st2, q2, q2[0], Options{StallNodes: 1, OrderValues: DescendingValues}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Found {
		t.Fatal("stalled run found nothing")
	}
	if res2.Reason != StopStalled || !res2.Stalled || res2.Optimal {
		t.Errorf("stalled run: reason=%v stalled=%v optimal=%v", res2.Reason, res2.Stalled, res2.Optimal)
	}

	// Timeout: a deadline already in the past aborts before any node.
	st3 := NewStore()
	q3 := postQueens(st3, 9)
	res3, err := Minimize(st3, q3, q3[0], Options{Deadline: time.Now().Add(-time.Second)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Reason != StopTimeout || res3.Stalled || res3.Optimal {
		t.Errorf("timeout run: reason=%v stalled=%v optimal=%v", res3.Reason, res3.Stalled, res3.Optimal)
	}
}

func TestMinimizeBestObjectiveTrace(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	y := st.NewVarRange("y", 0, 9)
	obj := st.NewVarRange("obj", 0, 18)
	Sum(st, obj, x, y)
	LessEqOffset(st, x, y, 2)
	log := &eventLog{}
	res, err := Minimize(st, []*Var{x, y}, obj, Options{Recorder: log, OrderValues: DescendingValues}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.BestObjectiveTrace) == 0 {
		t.Fatalf("no objective trace: %+v", res)
	}
	trace := res.BestObjectiveTrace
	for i := 1; i < len(trace); i++ {
		if trace[i].Objective >= trace[i-1].Objective {
			t.Fatalf("trace not strictly improving: %+v", trace)
		}
		if trace[i].Nodes < trace[i-1].Nodes || trace[i].Elapsed < trace[i-1].Elapsed {
			t.Fatalf("trace not monotone in nodes/time: %+v", trace)
		}
	}
	last := trace[len(trace)-1]
	if last.Objective != res.Best {
		t.Fatalf("final trace point %d != best %d", last.Objective, res.Best)
	}
	// Incumbent events mirror the trace.
	if got := log.count(obs.KindIncumbent); got != len(trace) {
		t.Errorf("incumbent events = %d, trace length = %d", got, len(trace))
	}
	for _, e := range log.events {
		if e.Kind == obs.KindIncumbent && e.Objective == last.Objective {
			return
		}
	}
	t.Error("final incumbent missing from event stream")
}

func TestStorePropagatorStats(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 6)
	if _, err := Solve(st, q, Options{}, func(*Store) bool { return true }); err != nil {
		t.Fatal(err)
	}
	stats := st.PropagatorStats()
	if len(stats) == 0 {
		t.Fatal("no propagator stats")
	}
	var total int64
	for _, s := range stats {
		if s.Name == "" {
			t.Error("unnamed propagator in stats")
		}
		total += s.Runs
	}
	if total != st.Stats() {
		t.Fatalf("per-propagator runs %d != total %d", total, st.Stats())
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Runs > stats[i-1].Runs {
			t.Fatal("stats not sorted most-run first")
		}
	}
	if stats[0].Name != "csp.not-equal" {
		t.Errorf("dominant propagator = %q, want csp.not-equal", stats[0].Name)
	}
}

func TestStorePropagationTiming(t *testing.T) {
	st := NewStore()
	st.EnableTiming(true)
	q := postQueens(st, 8)
	if _, err := Solve(st, q, Options{MaxSolutions: 1}, func(*Store) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if st.PropagationTime() <= 0 {
		t.Fatal("propagation time not accumulated")
	}
}

func TestWithName(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 5)
	st.Post(WithName(FuncProp(func(s *Store) error { return nil }), "custom"), x)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range st.PropagatorStats() {
		if s.Name == "custom" && s.Runs == 1 {
			return
		}
	}
	t.Fatalf("custom-named propagator missing: %+v", st.PropagatorStats())
}

func TestStopReasonString(t *testing.T) {
	want := map[StopReason]string{
		StopExhausted: "exhausted",
		StopTimeout:   "timeout",
		StopStalled:   "stalled",
		StopCut:       "cut",
		StopReason(9): "unknown",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}
