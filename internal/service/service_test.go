package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
)

// genBody builds a small generated-workload request on the homogeneous
// catalog fabric (NoBRAM keeps every module feasible there).
func genBody(seed int64, n int) string {
	return fmt.Sprintf(`{"fabric":"spartan-like-24x16","generate":{"seed":%d,"numModules":%d,"clbMin":4,"clbMax":6,"noBram":true,"alternatives":2},"options":{"stallNodes":100,"timeoutMs":5000}}`, seed, n)
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	return postCtx(t, h, body, context.Background())
}

func postCtx(t *testing.T, h http.Handler, body string, ctx context.Context) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/place", strings.NewReader(body)).WithContext(ctx)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func TestPlaceMissThenHit(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	body := genBody(1, 3)

	r1 := post(t, h, body)
	if r1.Code != http.StatusOK {
		t.Fatalf("first place: status %d body %s", r1.Code, r1.Body)
	}
	if got := r1.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first place: X-Cache = %q, want miss", got)
	}
	r2 := post(t, h, body)
	if r2.Code != http.StatusOK {
		t.Fatalf("second place: status %d body %s", r2.Code, r2.Body)
	}
	if got := r2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second place: X-Cache = %q, want hit", got)
	}
	if r1.Body.String() != r2.Body.String() {
		t.Fatalf("cache hit body differs from original:\n%s\nvs\n%s", r1.Body, r2.Body)
	}
	if d1, d2 := r1.Header().Get("X-Placement-Digest"), r2.Header().Get("X-Placement-Digest"); d1 != d2 || d1 == "" {
		t.Fatalf("digest headers differ or empty: %q vs %q", d1, d2)
	}

	var resp PlaceResponse
	if err := json.Unmarshal(r1.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Height <= 0 || len(resp.Placements) != 3 {
		t.Fatalf("implausible placement response: %+v", resp)
	}
	if resp.Digest != r1.Header().Get("X-Placement-Digest") {
		t.Fatalf("body digest %s != header digest %s", resp.Digest, r1.Header().Get("X-Placement-Digest"))
	}

	st := s.Stats()
	if st.Requests != 2 || st.CacheHits != 1 || st.Solves != 1 {
		t.Fatalf("stats after miss+hit: %+v", st)
	}
	if st.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", st.HitRatio)
	}
}

// TestPlacePermutationHitsCache drives the canonicalization through the
// wire format: the same two modules with module order and shape order
// permuted must be answered from the cache byte-identically.
func TestPlacePermutationHitsCache(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	shapeA1 := `{"tiles":[{"x":0,"y":0,"kind":"CLB"},{"x":1,"y":0,"kind":"CLB"}]}`
	shapeA2 := `{"tiles":[{"x":0,"y":0,"kind":"CLB"},{"x":0,"y":1,"kind":"CLB"}]}`
	shapeB1 := `{"tiles":[{"x":0,"y":0,"kind":"CLB"},{"x":1,"y":0,"kind":"CLB"},{"x":0,"y":1,"kind":"CLB"}]}`
	shapeB2 := `{"tiles":[{"x":0,"y":0,"kind":"CLB"},{"x":1,"y":0,"kind":"CLB"},{"x":1,"y":1,"kind":"CLB"}]}`
	mk := func(modules string) string {
		return `{"fabric":"spartan-like-24x16","modules":[` + modules + `],"options":{"stallNodes":100}}`
	}
	orig := mk(`{"name":"a","shapes":[` + shapeA1 + `,` + shapeA2 + `]},{"name":"b","shapes":[` + shapeB1 + `,` + shapeB2 + `]}`)
	perm := mk(`{"name":"b","shapes":[` + shapeB2 + `,` + shapeB1 + `]},{"name":"a","shapes":[` + shapeA2 + `,` + shapeA1 + `]}`)

	r1 := post(t, h, orig)
	if r1.Code != http.StatusOK || r1.Header().Get("X-Cache") != "miss" {
		t.Fatalf("original: status %d X-Cache %q body %s", r1.Code, r1.Header().Get("X-Cache"), r1.Body)
	}
	r2 := post(t, h, perm)
	if r2.Code != http.StatusOK {
		t.Fatalf("permuted: status %d body %s", r2.Code, r2.Body)
	}
	if r2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("permuted request missed the cache (X-Cache %q)", r2.Header().Get("X-Cache"))
	}
	if r1.Body.String() != r2.Body.String() {
		t.Fatal("permuted request body differs from original")
	}
}

// stubResult builds an identifiable fake solve outcome.
func stubResult(height int) *core.Result {
	return &core.Result{Found: true, Height: height, Utilization: 0.5, Optimal: true}
}

// TestSingleflightOneSolve issues the same request from many goroutines
// and requires exactly one underlying solve, with every caller served
// the identical body. Run under -race in CI.
func TestSingleflightOneSolve(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, MaxInFlight: 64})
	var solves atomic.Int64
	release := make(chan struct{})
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		solves.Add(1)
		<-release
		return stubResult(7), nil
	}
	h := s.Handler()
	body := genBody(1, 2)

	const n = 16
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := post(t, h, body)
			if rr.Code != http.StatusOK {
				t.Errorf("goroutine %d: status %d body %s", i, rr.Code, rr.Body)
				return
			}
			bodies[i] = rr.Body.String()
		}(i)
	}
	// Let the leader into the stub, give the rest time to pile up
	// behind the flight group, then release. Exactly-one-solve holds
	// for any interleaving (stragglers hit the cache), so the timing
	// here only makes the dedup path likely, not the assertion true.
	for solves.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("underlying solves = %d, want 1", got)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("goroutine %d got a different body", i)
		}
	}
}

// TestDistinctRequestsDoNotBlock verifies one slow instance cannot
// stall an unrelated one when a worker is free.
func TestDistinctRequestsDoNotBlock(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxInFlight: 8})
	slowEntered := make(chan struct{})
	slowRelease := make(chan struct{})
	s.solve = func(_ context.Context, req *canon.Request) (*core.Result, error) {
		if req.Modules[0].Name() == "slow" {
			close(slowEntered)
			<-slowRelease
			return stubResult(1), nil
		}
		return stubResult(2), nil
	}
	h := s.Handler()
	mk := func(name string) string {
		return `{"fabric":"spartan-like-24x16","modules":[{"name":"` + name +
			`","shapes":[{"tiles":[{"x":0,"y":0,"kind":"CLB"}]}]}]}`
	}

	slowDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { slowDone <- post(t, h, mk("slow")) }()
	<-slowEntered

	// The slow solve owns one worker; the fast one must still finish.
	fastDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { fastDone <- post(t, h, mk("fast")) }()
	select {
	case rr := <-fastDone:
		if rr.Code != http.StatusOK {
			t.Fatalf("fast request: status %d body %s", rr.Code, rr.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast request blocked behind unrelated slow solve")
	}
	close(slowRelease)
	if rr := <-slowDone; rr.Code != http.StatusOK {
		t.Fatalf("slow request: status %d body %s", rr.Code, rr.Body)
	}
}

// TestEvictionChurnServesCorrectPlacements hammers a 2-entry cache with
// many distinct instances from concurrent goroutines and checks every
// response is keyed to its own request — eviction must never cross
// wires. Run under -race in CI.
func TestEvictionChurnServesCorrectPlacements(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, MaxInFlight: 256, CacheEntries: 2})
	s.solve = func(_ context.Context, req *canon.Request) (*core.Result, error) {
		// Height identifies the instance: module count is the marker.
		return stubResult(len(req.Modules)), nil
	}
	h := s.Handler()

	const goroutines = 8
	const distinct = 6
	const rounds = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				want := 1 + (g+r)%distinct
				rr := post(t, h, genBody(int64(want), want))
				if rr.Code != http.StatusOK {
					t.Errorf("status %d body %s", rr.Code, rr.Body)
					return
				}
				var resp PlaceResponse
				if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
					t.Error(err)
					return
				}
				if resp.Height != want {
					t.Errorf("wrong-keyed response: height %d for instance %d", resp.Height, want)
					return
				}
				if resp.Digest != rr.Header().Get("X-Placement-Digest") {
					t.Errorf("digest mismatch: body %s header %s", resp.Digest, rr.Header().Get("X-Placement-Digest"))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Cache.Evictions == 0 {
		t.Fatalf("test exercised no evictions (stats %+v)", st)
	}
}

// TestAdmissionBackpressure fills the one-slot queue and expects the
// next distinct request to be shed with 429.
func TestAdmissionBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		once.Do(func() { close(entered) })
		<-release
		return stubResult(1), nil
	}
	defer close(release)
	h := s.Handler()

	// Distinct module *counts* guarantee distinct canonical instances
	// (same-count draws from different seeds can coincide).
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- post(t, h, genBody(1, 1)) }()
	<-entered // instance 1 occupies the worker

	second := make(chan *httptest.ResponseRecorder, 1)
	go func() { second <- post(t, h, genBody(2, 2)) }()
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if rr := post(t, h, genBody(3, 3)); rr.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429 (body %s)", rr.Code, rr.Body)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", st.Rejected)
	}
}

// TestQueuedRequestDeadline expires a client context while its solve
// is stuck behind a busy worker and expects 504.
func TestQueuedRequestDeadline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxInFlight: 4})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		once.Do(func() { close(entered) })
		<-release
		return stubResult(1), nil
	}
	defer close(release)
	h := s.Handler()

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- post(t, h, genBody(1, 1)) }()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if rr := postCtx(t, h, genBody(2, 2), ctx); rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued request with expired deadline: status %d, want 504 (body %s)", rr.Code, rr.Body)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeouts counter = %d, want 1", st.Timeouts)
	}
}

func TestSolveErrorsAreNotCached(t *testing.T) {
	s := newTestServer(t, Config{})
	var solves atomic.Int64
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		solves.Add(1)
		return nil, fmt.Errorf("module m00: no feasible position")
	}
	h := s.Handler()
	for i := 0; i < 2; i++ {
		rr := post(t, h, genBody(1, 1))
		if rr.Code != http.StatusUnprocessableEntity {
			t.Fatalf("attempt %d: status %d, want 422 (body %s)", i, rr.Code, rr.Body)
		}
	}
	if got := solves.Load(); got != 2 {
		t.Fatalf("solves = %d, want 2 (errors must not be cached)", got)
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("cache holds %d entries after errors, want 0", n)
	}
}

func TestInfeasibleInstanceIsCached(t *testing.T) {
	s := newTestServer(t, Config{})
	var solves atomic.Int64
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		solves.Add(1)
		return &core.Result{Found: false}, nil
	}
	h := s.Handler()
	for i := 0; i < 2; i++ {
		rr := post(t, h, genBody(1, 1))
		if rr.Code != http.StatusOK {
			t.Fatalf("attempt %d: status %d (body %s)", i, rr.Code, rr.Body)
		}
		var resp PlaceResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Found {
			t.Fatal("stub infeasible result reported found")
		}
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("solves = %d, want 1 (infeasible outcomes are cacheable)", got)
	}
}

func TestPlaceBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"bad-json", `{"fabric":`},
		{"unknown-fabric", `{"fabric":"nope","generate":{"seed":1}}`},
		{"unknown-field", `{"fabric":"spartan-like-24x16","generate":{"seed":1},"bogus":1}`},
		{"no-modules", `{"fabric":"spartan-like-24x16"}`},
		{"modules-and-generate", `{"fabric":"spartan-like-24x16","generate":{"seed":1},"modules":[{"name":"a","shapes":[{"tiles":[{"x":0,"y":0,"kind":"CLB"}]}]}]}`},
		{"bad-kind", `{"fabric":"spartan-like-24x16","modules":[{"name":"a","shapes":[{"tiles":[{"x":0,"y":0,"kind":"LUT"}]}]}]}`},
		{"empty-shape", `{"fabric":"spartan-like-24x16","modules":[{"name":"a","shapes":[{"tiles":[]}]}]}`},
		{"dup-module-names", `{"fabric":"spartan-like-24x16","modules":[{"name":"a","shapes":[{"tiles":[{"x":0,"y":0,"kind":"CLB"}]}]},{"name":"a","shapes":[{"tiles":[{"x":0,"y":0,"kind":"CLB"}]}]}]}`},
		{"bad-strategy", `{"fabric":"spartan-like-24x16","generate":{"seed":1},"options":{"strategy":"random"}}`},
		{"bad-value-order", `{"fabric":"spartan-like-24x16","generate":{"seed":1},"options":{"valueOrder":"zigzag"}}`},
		{"negative-timeout", `{"fabric":"spartan-like-24x16","generate":{"seed":1},"options":{"timeoutMs":-5}}`},
		{"bad-region", `{"fabric":"spartan-like-24x16","generate":{"seed":1},"region":{"x":0,"y":0,"w":0,"h":5}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rr := post(t, h, tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", rr.Code, rr.Body)
			}
			var resp errorResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil || resp.Error == "" {
				t.Fatalf("error body not structured: %s", rr.Body)
			}
		})
	}
}

func TestDefaultOptionsShareCacheEntry(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	implicit := `{"fabric":"spartan-like-24x16","generate":{"seed":1,"numModules":2,"clbMin":4,"clbMax":6,"noBram":true,"alternatives":2}}`
	explicit := `{"fabric":"spartan-like-24x16","generate":{"seed":1,"numModules":2,"clbMin":4,"clbMax":6,"noBram":true,"alternatives":2},"options":{"timeoutMs":10000,"stallNodes":2000}}`
	r1 := post(t, h, implicit)
	if r1.Code != http.StatusOK {
		t.Fatalf("implicit: status %d body %s", r1.Code, r1.Body)
	}
	r2 := post(t, h, explicit)
	if r2.Code != http.StatusOK || r2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("explicit defaults: status %d X-Cache %q", r2.Code, r2.Header().Get("X-Cache"))
	}
}

func TestHealthzStatsFabrics(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	if rr := get(t, h, "/v1/healthz"); rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"ok"`) {
		t.Fatalf("healthz: status %d body %s", rr.Code, rr.Body)
	}
	rr := get(t, h, "/v1/fabrics")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "virtex4-like-72x60") {
		t.Fatalf("fabrics: status %d body %s", rr.Code, rr.Body)
	}
	rr = get(t, h, "/v1/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rr.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.MaxInFlight != 64 || st.Cache.Capacity != 1024 {
		t.Fatalf("defaults not reflected in stats: %+v", st)
	}

	// Method mismatches are rejected by the mux.
	if rr := get(t, h, "/v1/place"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/place: status %d, want 405", rr.Code)
	}
}

// TestRegionWindowChangesInstance places the same modules on the full
// fabric and on a window and expects distinct cache entries.
func TestRegionWindowChangesInstance(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	full := `{"fabric":"spartan-like-24x16","generate":{"seed":1,"numModules":2,"clbMin":4,"clbMax":6,"noBram":true,"alternatives":2},"options":{"stallNodes":100}}`
	windowed := `{"fabric":"spartan-like-24x16","region":{"x":0,"y":0,"w":12,"h":16},"generate":{"seed":1,"numModules":2,"clbMin":4,"clbMax":6,"noBram":true,"alternatives":2},"options":{"stallNodes":100}}`
	r1 := post(t, h, full)
	r2 := post(t, h, windowed)
	if r1.Code != http.StatusOK || r2.Code != http.StatusOK {
		t.Fatalf("status %d / %d", r1.Code, r2.Code)
	}
	if r2.Header().Get("X-Cache") != "miss" {
		t.Fatal("windowed request shared the full-fabric cache entry")
	}
	if r1.Header().Get("X-Placement-Digest") == r2.Header().Get("X-Placement-Digest") {
		t.Fatal("digest ignores the region window")
	}
}
