package csp

import (
	"sort"
	"testing"
)

// FuzzDomain drives the bitset Domain through a byte-encoded op stream
// (remove, range removal, keep-only, filter, union, bisect, clone) and
// cross-checks every observable — size, emptiness, bounds, membership,
// value enumeration — against a brute-force map model after every op.
// The universe straddles word boundaries (negative base, >64 values)
// so word-edge masking bugs are reachable.
func FuzzDomain(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 2, 60, 3, 20})
	f.Add([]byte{4, 3, 5, 0, 4, 7, 0, 0, 1, 40})
	f.Add([]byte{2, 0, 1, 90, 5, 5, 3, 63, 3, 64, 6, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lo, hi = -8, 119 // 128-value universe, base not word-aligned
		span := hi - lo + 1
		d := NewDomainRange(lo, hi)
		model := map[int]bool{}
		for v := lo; v <= hi; v++ {
			model[v] = true
		}

		check := func(ctx string) {
			t.Helper()
			if d.Size() != len(model) {
				t.Fatalf("%s: size %d, model %d", ctx, d.Size(), len(model))
			}
			if d.Empty() != (len(model) == 0) {
				t.Fatalf("%s: emptiness mismatch", ctx)
			}
			var want []int
			for v := range model {
				want = append(want, v)
			}
			sort.Ints(want)
			got := d.Values()
			if len(got) != len(want) {
				t.Fatalf("%s: %d values, model %d", ctx, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: values[%d] = %d, model %d", ctx, i, got[i], want[i])
				}
			}
			if len(want) > 0 {
				if d.Min() != want[0] || d.Max() != want[len(want)-1] {
					t.Fatalf("%s: bounds [%d,%d], model [%d,%d]",
						ctx, d.Min(), d.Max(), want[0], want[len(want)-1])
				}
				if v, ok := d.Singleton(); (len(want) == 1) != ok || (ok && v != want[0]) {
					t.Fatalf("%s: singleton (%d,%v), model %v", ctx, v, ok, want)
				}
			}
			for v := lo - 2; v <= hi+2; v++ {
				if d.Contains(v) != model[v] {
					t.Fatalf("%s: Contains(%d) = %v, model %v", ctx, v, d.Contains(v), model[v])
				}
			}
		}

		check("initial")
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 7
			arg := lo + int(data[i+1])%span
			switch op {
			case 0:
				d.Remove(arg)
				delete(model, arg)
			case 1:
				d.RemoveBelow(arg)
				for v := range model {
					if v < arg {
						delete(model, v)
					}
				}
			case 2:
				d.RemoveAbove(arg)
				for v := range model {
					if v > arg {
						delete(model, v)
					}
				}
			case 3:
				d.KeepOnly(arg)
				had := model[arg]
				for v := range model {
					delete(model, v)
				}
				if had {
					model[arg] = true
				}
			case 4:
				// Filter: keep values congruent to arg mod 3.
				want := ((arg % 3) + 3) % 3
				keep := func(v int) bool { return ((v%3)+3)%3 == want }
				d.Filter(keep)
				for v := range model {
					if !keep(v) {
						delete(model, v)
					}
				}
			case 5:
				// Union with an arithmetic progression over the universe.
				step := 1 + int(data[i+1])%5
				o := NewDomainRange(lo, hi)
				o.Filter(func(v int) bool { return (v-lo)%step == 0 })
				d.Union(o)
				for v := lo; v <= hi; v += step {
					model[v] = true
				}
			case 6:
				if d.Empty() {
					continue
				}
				before := d.Values()
				loD, hiD := d.Bisect()
				if loD.Empty() {
					t.Fatal("Bisect: empty lower half")
				}
				if loD.Size()+hiD.Size() != d.Size() {
					t.Fatalf("Bisect: %d + %d values, domain has %d",
						loD.Size(), hiD.Size(), d.Size())
				}
				if !hiD.Empty() && loD.Max() >= hiD.Min() {
					t.Fatalf("Bisect: halves overlap: lo max %d, hi min %d", loD.Max(), hiD.Min())
				}
				if hiD.Empty() && d.Size() != 1 {
					t.Fatalf("Bisect: empty upper half on a %d-value domain", d.Size())
				}
				after := d.Values()
				for j := range before {
					if after[j] != before[j] {
						t.Fatal("Bisect mutated its receiver")
					}
				}
			}
			check("after op")
		}

		// Clone must be equal and independent.
		c := d.Clone()
		if !c.Equal(d) {
			t.Fatal("clone differs from source")
		}
		if !d.Empty() {
			c.Remove(d.Min())
			if c.Size() != d.Size()-1 || d.Contains(d.Min()) != true {
				t.Fatal("clone mutation leaked into source")
			}
		}
	})
}
