package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/metrics"
	"repro/internal/module"
	"repro/internal/recobus"
)

// RelocationRow aggregates bitstream-relocatability statistics for one
// module population.
type RelocationRow struct {
	Label string
	// Classes is the per-shape count of relocation classes (bitstreams
	// needed to cover all anchors).
	Classes metrics.Summary
	// Coverage is the per-shape fraction of anchors served by the
	// single best bitstream.
	Coverage metrics.Summary
	// Anchors is the per-shape valid-anchor count.
	Anchors metrics.Summary
}

// FormatRelocationRows renders the relocatability comparison.
func FormatRelocationRows(title string, rows []RelocationRow) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-28s %-18s %-22s %s\n",
		"Modules", "Mean Classes", "One-Bitstream Cover", "Mean Anchors")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %6.1f ± %4.1f      %6.1f%% ± %4.1f        %7.1f\n",
			r.Label, r.Classes.Mean, r.Classes.CI95(),
			r.Coverage.Mean*100, r.Coverage.CI95()*100, r.Anchors.Mean)
	}
	return sb.String()
}

// RelocationComparison quantifies the [9] trade-off on the Table-I
// region: native modules (using BRAM columns) need many stored
// bitstreams to exploit their anchors, while masked CLB-only modules
// are far more relocatable — the benefit the paper weighs against the
// area cost measured by MaskedResourcesComparison.
func RelocationComparison(cfg RunConfig) ([]RelocationRow, error) {
	cfg = cfg.defaults()
	kinds := []struct {
		label string
		mask  bool
	}{
		{"native (uses BRAM columns)", false},
		{"masked [9] (CLB-only)", true},
	}
	acc := make([]struct{ classes, coverage, anchors []float64 }, len(kinds))

	wl := cfg.Workload.Defaults()
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(run)))
		for i := 0; i < wl.NumModules; i++ {
			d := module.Demand{
				CLB:  wl.CLBMin + rng.Intn(wl.CLBMax-wl.CLBMin+1),
				BRAM: wl.BRAMMin + rng.Intn(wl.BRAMMax-wl.BRAMMin+1),
			}
			for ki, kind := range kinds {
				dd := d
				opts := module.AlternativeOptions{Count: 1}
				if kind.mask {
					dd = module.Demand{CLB: d.CLB + MaskedCLBPerBRAM*d.BRAM}
					if module.BalancedWidth(dd) > 10 {
						opts.BaseWidth = 10
					}
				}
				m, err := module.GenerateAlternatives(fmt.Sprintf("m%02d", i), dd, opts)
				if err != nil {
					return nil, fmt.Errorf("experiments: relocation run %d: %w", run, err)
				}
				sum := recobus.SummarizeRelocation(cfg.Region, m.Shape(0))
				if sum.Anchors == 0 {
					continue // unplaceable draw; excluded from both stats
				}
				acc[ki].classes = append(acc[ki].classes, float64(sum.Classes))
				acc[ki].coverage = append(acc[ki].coverage, sum.Ratio())
				acc[ki].anchors = append(acc[ki].anchors, float64(sum.Anchors))
			}
		}
	}

	rows := make([]RelocationRow, len(kinds))
	for ki, kind := range kinds {
		rows[ki] = RelocationRow{
			Label:    kind.label,
			Classes:  metrics.Summarize(acc[ki].classes),
			Coverage: metrics.Summarize(acc[ki].coverage),
			Anchors:  metrics.Summarize(acc[ki].anchors),
		}
	}
	return rows, nil
}
