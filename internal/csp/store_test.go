package csp

import (
	"errors"
	"testing"
)

func TestStoreVarBasics(t *testing.T) {
	st := NewStore()
	v := st.NewVarRange("x", 1, 5)
	if v.Name() != "x" || v.Min() != 1 || v.Max() != 5 || v.Size() != 5 {
		t.Fatalf("var wrong: %v", v)
	}
	if v.Assigned() {
		t.Fatal("fresh var assigned")
	}
	if err := st.Assign(v, 3); err != nil {
		t.Fatal(err)
	}
	if !v.Assigned() || v.Value() != 3 {
		t.Fatal("assignment failed")
	}
	if len(st.Vars()) != 1 {
		t.Fatal("Vars() wrong")
	}
}

func TestStoreNewVarClones(t *testing.T) {
	st := NewStore()
	dom := NewDomainRange(0, 3)
	v := st.NewVar("x", dom)
	dom.Remove(2)
	if !v.Domain().Contains(2) {
		t.Fatal("NewVar did not clone the domain")
	}
}

func TestStoreNewVarPanics(t *testing.T) {
	st := NewStore()
	empty := NewDomainRange(0, 0)
	empty.Remove(0)
	for name, f := range map[string]func(){
		"nil":   func() { st.NewVar("x", nil) },
		"empty": func() { st.NewVar("x", empty) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s domain accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestStoreAssignOutOfDomain(t *testing.T) {
	st := NewStore()
	v := st.NewVarRange("x", 1, 5)
	if err := st.Assign(v, 9); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("Assign(9) err = %v", err)
	}
}

func TestStorePushPopRestoresDomains(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	y := st.NewVarRange("y", 0, 9)

	st.Push()
	if err := st.SetMin(x, 5); err != nil {
		t.Fatal(err)
	}
	if err := st.Assign(y, 2); err != nil {
		t.Fatal(err)
	}
	st.Push()
	if err := st.SetMax(x, 6); err != nil {
		t.Fatal(err)
	}
	if x.Min() != 5 || x.Max() != 6 || y.Value() != 2 {
		t.Fatal("mutations not visible")
	}
	st.Pop()
	if x.Max() != 9 || x.Min() != 5 {
		t.Fatalf("inner Pop wrong: x=%v", x)
	}
	st.Pop()
	if x.Min() != 0 || x.Max() != 9 || y.Size() != 10 {
		t.Fatalf("outer Pop wrong: x=%v y=%v", x, y)
	}
}

func TestStorePopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewStore().Pop()
}

func TestStoreFailureClearsOnPop(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 3)
	st.Push()
	// Empty the domain: failure.
	err := st.SetMin(x, 10)
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("expected inconsistency, got %v", err)
	}
	if st.Propagate() == nil {
		t.Fatal("Propagate after failure should fail")
	}
	st.Pop()
	if err := st.Propagate(); err != nil {
		t.Fatalf("Propagate after Pop: %v", err)
	}
	if x.Size() != 4 {
		t.Fatal("domain not restored")
	}
}

// countingProp counts invocations and optionally prunes.
type countingProp struct {
	runs  int
	prune func(st *Store) error
}

func (p *countingProp) Propagate(st *Store) error {
	p.runs++
	if p.prune != nil {
		return p.prune(st)
	}
	return nil
}

func TestStorePropagationWakesWatchers(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	y := st.NewVarRange("y", 0, 9)
	p := &countingProp{}
	st.Post(p, x)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if p.runs != 1 {
		t.Fatalf("initial run count = %d, want 1", p.runs)
	}
	// Changing y does not wake p.
	if err := st.Assign(y, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if p.runs != 1 {
		t.Fatalf("unwatched change woke propagator (runs=%d)", p.runs)
	}
	// Changing x wakes p.
	if err := st.Assign(x, 4); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if p.runs != 2 {
		t.Fatalf("watched change did not wake propagator (runs=%d)", p.runs)
	}
}

func TestStorePropagationFixpoint(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 10)
	y := st.NewVarRange("y", 0, 10)
	// x + 1 <= y and y + 1 <= x is infeasible; the pair must detect it.
	LessEqOffset(st, x, y, 1)
	LessEqOffset(st, y, x, 1)
	if err := st.Propagate(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestStoreScheduleHandle(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	p := &countingProp{}
	h := st.Post(p, x)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	st.Schedule(h)
	st.Schedule(h) // dedup: only one queued run
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if p.runs != 2 {
		t.Fatalf("runs = %d, want 2", p.runs)
	}
	if st.Stats() < 2 {
		t.Fatal("Stats not counting")
	}
}

func TestStoreFilterDomainSharing(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	st.Push()
	// A no-op filter must not trail (copy-on-write probe).
	before := len(st.trail)
	if err := st.FilterDomain(x, func(int) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if len(st.trail) != before {
		t.Fatal("no-op FilterDomain trailed a domain")
	}
	if err := st.FilterDomain(x, func(v int) bool { return v < 5 }); err != nil {
		t.Fatal(err)
	}
	if len(st.trail) != before+1 {
		t.Fatal("mutating FilterDomain did not trail")
	}
	st.Pop()
	if x.Size() != 10 {
		t.Fatal("Pop did not restore filtered domain")
	}
}
