package baseline

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// fuzzBarModule builds a module with horizontal and vertical bar
// alternatives, the shape class that exercises UseAlternatives.
func fuzzBarModule(name string, n int) *module.Module {
	var hTiles, vTiles []module.Tile
	for i := 0; i < n; i++ {
		hTiles = append(hTiles, module.Tile{At: grid.Pt(i, 0), Kind: fabric.CLB})
		vTiles = append(vTiles, module.Tile{At: grid.Pt(0, i), Kind: fabric.CLB})
	}
	return module.MustModule(name, module.MustShape(hTiles), module.MustShape(vTiles))
}

func fuzzRectModule(name string, w, h int) *module.Module {
	var tiles []module.Tile
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
		}
	}
	return module.MustModule(name, module.MustShape(tiles))
}

// FuzzBaselineValid is the heuristic twin of core's FuzzPlacementValid,
// and the safety net under the service's graceful-degradation path:
// whatever instance a degraded request hands the baseline placers, ANY
// placement they return must satisfy the paper's M_a (in bounds,
// resource-compatible), M_b (region shape) and M_c (non-overlap)
// checks via Result.Validate. The fuzz input decodes to a region size,
// a module mix, one of the four algorithms, and the alternatives knob.
func FuzzBaselineValid(f *testing.F) {
	f.Add([]byte{12, 10, 3, 0, 1, 2, 1, 3, 0, 1, 4})
	f.Add([]byte{8, 16, 2, 1, 0, 0, 2, 3})
	f.Add([]byte{20, 8, 4, 2, 1, 1, 1, 2, 2, 0, 3, 1, 5})
	f.Add([]byte{10, 10, 2, 3, 1, 6, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		w := 8 + int(data[0])%13 // 8..20
		h := 8 + int(data[1])%13 // 8..20
		nMods := 1 + int(data[2])%4
		alg := Algorithm(data[3] % 4)
		useAlts := data[4]%2 == 1
		region := fabric.Homogeneous(w, h).FullRegion()

		var mods []*module.Module
		idx := 5
		for m := 0; m < nMods; m++ {
			if idx >= len(data) {
				break
			}
			b := data[idx]
			idx++
			name := fmt.Sprintf("m%d", m)
			if b%3 == 0 {
				n := 2 + int(b/3)%4 // 2..5
				mods = append(mods, fuzzBarModule(name, n))
			} else {
				mw := 1 + int(b)%3    // 1..3
				mh := 1 + int(b/16)%3 // 1..3
				mods = append(mods, fuzzRectModule(name, mw, mh))
			}
		}
		if len(mods) == 0 {
			return
		}

		res, err := Place(region, mods, alg, Options{
			UseAlternatives: useAlts,
			Seed:            int64(data[0]),
			Iterations:      200, // keep annealing inputs fast
		})
		if err != nil {
			// Candidate-construction rejections (a module that fits
			// nowhere) are legitimate outcomes, not soundness failures.
			return
		}
		if !res.Found {
			return
		}
		if err := res.Validate(region); err != nil {
			t.Fatalf("%v (useAlts=%v) returned an invalid placement: %v", alg, useAlts, err)
		}
		// The reported height must cover every placed tile.
		occ := res.Occupancy(region)
		for y := res.Height; y < h; y++ {
			for x := 0; x < w; x++ {
				if occ.Get(x, y) {
					t.Fatalf("%v: tile (%d,%d) occupied above reported height %d", alg, x, y, res.Height)
				}
			}
		}
		if !useAlts {
			// Without alternatives every placement must use shape 0.
			for _, p := range res.Placements {
				if p.ShapeIndex != 0 {
					t.Fatalf("%v placed %s with shape %d despite UseAlternatives=false", alg, p.Module.Name(), p.ShapeIndex)
				}
			}
		}
	})
}
