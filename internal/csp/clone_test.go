package csp

import (
	"errors"
	"testing"
)

// snapshotDomains captures every variable's domain values, for
// bit-for-bit comparison after divergent mutation.
func snapshotDomains(st *Store) [][]int {
	out := make([][]int, len(st.Vars()))
	for i, v := range st.Vars() {
		out[i] = v.Domain().Values()
	}
	return out
}

func domainsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// buildCloneModel posts a model exercising every clonable propagator
// kind in the package.
func buildCloneModel(t *testing.T) (*Store, []*Var) {
	t.Helper()
	st := NewStore()
	n := 6
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = st.NewVarRange("v", 0, n-1)
	}
	AllDifferentBounds(st, vars...)
	NotEqualOffset(st, vars[0], vars[1], 2)
	LessEq(st, vars[2], vars[3])
	EqualOffset(st, vars[4], vars[5], -1)
	total := st.NewVarRange("total", 0, n*n)
	Sum(st, total, vars...)
	m := st.NewVarRange("max", 0, n-1)
	MaxOf(st, m, vars...)
	res := st.NewVarRange("res", 0, 100)
	Element(st, vars[0], []int{10, 20, 30, 40, 50, 60}, res)
	BinaryTable(st, vars[1], vars[2], [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {2, 5}})
	b := st.NewVarRange("b", 0, 1)
	ChannelEq(st, b, vars[3], 2)
	if err := st.Propagate(); err != nil {
		t.Fatalf("root propagation failed: %v", err)
	}
	return st, vars
}

// TestCloneDivergence is the store-cloning equivalence test: after
// Clone, propagation on either store must leave the other bit-for-bit
// unchanged, and both must reach the same fixpoints given the same
// decisions.
func TestCloneDivergence(t *testing.T) {
	st, vars := buildCloneModel(t)
	cl, err := st.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}

	// The clone starts bit-for-bit equal.
	if !domainsEqual(snapshotDomains(st), snapshotDomains(cl)) {
		t.Fatal("clone does not match source immediately after Clone")
	}

	// Diverge the clone: assign on the clone, check the source is
	// untouched.
	before := snapshotDomains(st)
	clVars := cl.Vars()
	cl.Push()
	if err := cl.Assign(clVars[vars[0].ID()], 0); err != nil {
		t.Fatalf("assign on clone: %v", err)
	}
	if err := cl.Propagate(); err != nil {
		t.Fatalf("propagate on clone: %v", err)
	}
	if !domainsEqual(before, snapshotDomains(st)) {
		t.Fatal("mutating the clone changed the source store")
	}

	// Diverge the source the other way: the clone keeps its own state.
	clBefore := snapshotDomains(cl)
	st.Push()
	if err := st.Assign(vars[0], 1); err != nil {
		t.Fatalf("assign on source: %v", err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatalf("propagate on source: %v", err)
	}
	if !domainsEqual(clBefore, snapshotDomains(cl)) {
		t.Fatal("mutating the source changed the clone")
	}

	// Pop both; same decision on both stores must reach the same
	// fixpoint (the cloned propagators behave identically).
	st.Pop()
	cl.Pop()
	st.Push()
	cl.Push()
	if err := st.Assign(vars[2], 2); err != nil {
		t.Fatalf("assign on source: %v", err)
	}
	if err := cl.Assign(clVars[vars[2].ID()], 2); err != nil {
		t.Fatalf("assign on clone: %v", err)
	}
	errSrc := st.Propagate()
	errCl := cl.Propagate()
	if (errSrc == nil) != (errCl == nil) {
		t.Fatalf("propagation outcomes diverge: source %v, clone %v", errSrc, errCl)
	}
	if errSrc == nil && !domainsEqual(snapshotDomains(st), snapshotDomains(cl)) {
		t.Fatal("same decision reached different fixpoints on source and clone")
	}
}

// TestClonePreservesSearch checks a clone solves the same problem to
// the same solutions as its source.
func TestClonePreservesSearch(t *testing.T) {
	build := func() *Store {
		st := NewStore()
		n := 5
		vars := make([]*Var, n)
		for i := range vars {
			vars[i] = st.NewVarRange("q", 0, n-1)
		}
		AllDifferent(st, vars...)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				NotEqualOffset(st, vars[i], vars[j], j-i)
				NotEqualOffset(st, vars[j], vars[i], j-i)
			}
		}
		if err := st.Propagate(); err != nil {
			t.Fatalf("root propagation: %v", err)
		}
		return st
	}
	st := build()
	cl, err := st.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	count := func(s *Store) int {
		n := 0
		res, err := Solve(s, s.Vars(), Options{}, func(*Store) bool { n++; return true })
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if res.Reason != StopExhausted {
			t.Fatalf("search not exhausted: %v", res.Reason)
		}
		return n
	}
	if a, b := count(st), count(cl); a != b {
		t.Fatalf("source found %d solutions, clone found %d", a, b)
	}
}

// TestCloneRejectsFuncProp checks the typed error path: FuncProp cannot
// be re-targeted, so Clone must fail with *CloneError naming it.
func TestCloneRejectsFuncProp(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	st.Post(WithName(FuncProp(func(s *Store) error { return s.SetMax(x, 5) }), "test.adhoc"), x)
	cl, err := st.Clone()
	if cl != nil || err == nil {
		t.Fatal("Clone accepted a store holding a FuncProp")
	}
	var ce *CloneError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CloneError, got %T: %v", err, err)
	}
	if ce.Prop != "test.adhoc" {
		t.Fatalf("CloneError names %q, want test.adhoc", ce.Prop)
	}
}
