package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInScope(t *testing.T) {
	cases := []struct {
		analyzer, path string
		want           bool
	}{
		{"clonecomplete", "repro/internal/csp", true},
		{"clonecomplete", "repro/internal/geost", true},
		{"clonecomplete", "repro/internal/workload", false},
		{"nondeterminism", "repro/internal/core", true},
		{"nondeterminism", "repro/internal/obs", true},
		{"nondeterminism", "repro/internal/netlist", false},
		{"nondeterminism", "repro/internal/experiments", false},
		{"obsgate", "repro/internal/csp", true},
		{"obsgate", "repro/internal/obs", true},
		{"obsgate", "repro/internal/service", false},
		{"optvalidate", "repro/internal/csp", true},
		{"optvalidate", "repro/internal/core", true},
		{"optvalidate", "repro/internal/service", false},
		{"nondeterminism", "repro/internal/presolve", true},
		{"obsgate", "repro/internal/presolve", true},
		{"lockscope", "repro/internal/presolve", true},
		{"ctxflow", "repro/internal/presolve", true},
		{"goroleak", "repro/internal/presolve", true},
		{"nakedpanic", "repro/internal/grid", true},
		{"nakedpanic", "repro/cmd/placer", false},
		{"nakedpanic", "repro/examples/quickstart", false},
		{"lockscope", "repro/internal/service", true},
		{"lockscope", "repro/internal/csp", true},
		{"lockscope", "repro/internal/workload", false},
		{"ctxflow", "repro/internal/service", true},
		{"ctxflow", "repro/internal/client", true},
		{"ctxflow", "repro/internal/csp", false},
		{"goroleak", "repro/internal/obs", true},
		{"goroleak", "repro/internal/netlist", false},
		{"atomicsafe", "repro/internal/anything", true},
		{"atomicsafe", "repro/cmd/placer", false},
		{"syncmisuse", "repro/internal/service", true},
		{"syncmisuse", "repro/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := inScope(c.analyzer, c.path); got != c.want {
			t.Errorf("inScope(%q, %q) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

// TestScopesCoverAllAnalyzers keeps the scope table in lockstep with
// the suite: an analyzer added without a scope entry would silently
// run nowhere-in-particular (empty scope = everywhere), which should
// be a deliberate choice, not an omission.
func TestScopesCoverAllAnalyzers(t *testing.T) {
	// Import cycle note: the driver's scope table is data, so the
	// check lives here rather than in the library's own tests.
	for name := range scopes {
		found := false
		for _, a := range analyzersUnderTest() {
			if a == name {
				found = true
			}
		}
		if !found {
			t.Errorf("scopes entry %q matches no registered analyzer", name)
		}
	}
	for _, a := range analyzersUnderTest() {
		if _, ok := scopes[a]; !ok {
			t.Errorf("analyzer %q has no scopes entry", a)
		}
	}
}

func analyzersUnderTest() []string {
	return []string{
		"clonecomplete", "nondeterminism", "obsgate", "optvalidate", "nakedpanic",
		"lockscope", "ctxflow", "goroleak", "atomicsafe", "syncmisuse",
	}
}

// writeModule materializes a throwaway module whose packages sit under
// internal/ so the repo's scope fragments match them.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module throwaway\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunCleanModule runs the library pipeline over a tiny synthetic
// module and expects zero findings and zero errors.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/csp/p.go": `
// Package csp is a miniature stand-in with fully compliant code.
package csp

// Store is the solver state.
type Store struct{}

// Propagator filters domains.
type Propagator interface {
	Propagate(st *Store) error
}

// CloneCtx maps originals to clones.
type CloneCtx struct{}

type eq struct{ c int }

func (p *eq) Propagate(st *Store) error      { return nil }
func (p *eq) CloneFor(ctx *CloneCtx) Propagator { return &eq{c: p.c} }
`,
	})
	diags, err := run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("run reported %d findings on compliant code: %v", len(diags), diags)
	}
}

func TestExitCleanOnFindingFreeModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/ok/ok.go": `
// Package ok is finding-free.
package ok

// Double doubles.
func Double(n int) int { return 2 * n }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-dir", dir, "./..."}, &stdout, &stderr); code != exitClean {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitClean, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote diagnostics: %s", stdout.String())
	}
}

func TestExitFindingsOnDiagnostics(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/bad/bad.go": `
// Package bad trips nakedpanic.
package bad

func boom() {
	panic("undocumented")
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-dir", dir, "./..."}, &stdout, &stderr); code != exitFindings {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitFindings, stderr.String())
	}
	if !strings.Contains(stdout.String(), "nakedpanic") {
		t.Errorf("diagnostic output missing the analyzer name: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary: %s", stderr.String())
	}
}

func TestExitErrorOnBrokenModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/broken/broken.go": `
// Package broken does not type-check.
package broken

func f() int { return undefinedIdentifier }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-dir", dir, "./..."}, &stdout, &stderr); code != exitError {
		t.Fatalf("exit code = %d, want %d (stdout: %s)", code, exitError, stdout.String())
	}
	if stderr.Len() == 0 {
		t.Error("load error produced no stderr explanation")
	}
}

func TestJSONFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/bad/bad.go": `
// Package bad trips nakedpanic.
package bad

func boom() {
	panic("undocumented")
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-json", "-dir", dir, "./..."}, &stdout, &stderr); code != exitFindings {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitFindings, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "nakedpanic" || f.Line != 6 || filepath.Base(f.File) != "bad.go" || f.Message == "" {
		t.Errorf("unexpected finding payload: %+v", f)
	}
}

func TestJSONCleanRunIsEmptyArray(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/ok/ok.go": `
// Package ok is finding-free.
package ok

// Triple triples.
func Triple(n int) int { return 3 * n }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-json", "-dir", dir, "./..."}, &stdout, &stderr); code != exitClean {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitClean, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json run = %q, want empty array", got)
	}
}
